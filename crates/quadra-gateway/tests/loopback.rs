//! Loopback integration: a real gateway on an ephemeral port, driven by a
//! real `TcpStream` client, checked **bitwise** against direct in-process
//! `RouterClient` submissions to the same router.
//!
//! Bitwise equality holds because batch composition never changes a
//! sample's result in this engine (GEMM accumulates over the feature axis
//! only; eval-mode BatchNorm uses running stats), and the wire format
//! transports raw f32 bit patterns.

use quadra_gateway::{Gateway, GatewayClient, GatewayConfig, Reply};
use quadra_nn::{Layer, Linear, Relu, Sequential};
use quadra_serve::{Priority, Request, Router, ServeConfig, ServeError};
use quadra_tensor::Tensor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Duration;

const IN: usize = 6;
const OUT: usize = 3;
const MAX_FRAME: usize = 16 << 20;

fn start_gateway() -> Gateway {
    let router = Router::builder()
        .endpoint("mlp", ServeConfig { workers: 2, ..ServeConfig::default() }, || {
            let mut rng = StdRng::seed_from_u64(42);
            Box::new(Sequential::new(vec![
                Box::new(Linear::new(IN, 8, true, &mut rng)) as Box<dyn Layer>,
                Box::new(Relu::new()),
                Box::new(Linear::new(8, OUT, true, &mut rng)),
            ]))
        })
        .start()
        .expect("router starts");
    Gateway::start(GatewayConfig::default(), router).expect("gateway starts")
}

#[test]
fn gateway_responses_are_bitwise_equal_to_direct_router_calls() {
    let gateway = start_gateway();
    let direct = gateway.client();
    let mut tcp = GatewayClient::connect(gateway.local_addr(), MAX_FRAME).expect("client connects");

    let mut rng = StdRng::seed_from_u64(7);
    for round in 0..20 {
        let samples = 1 + round % 3;
        let data: Vec<f32> = (0..samples * IN).map(|_| rng.gen_range(-2.0..2.0)).collect();
        let x = Tensor::from_vec(data, &[samples, IN]).unwrap();

        let reply = tcp
            .call("mlp", x.clone(), Priority::Interactive, None, Some("loopback"))
            .expect("tcp call succeeds");
        let Reply::Response(frame) = reply else { panic!("round {round}: expected response, got {reply:?}") };

        let expected = direct
            .send("mlp", Request::new(x).tag("loopback"))
            .expect("direct send")
            .wait()
            .expect("direct response");

        assert_eq!(frame.output.shape(), expected.output.shape(), "round {round}: shape");
        let wire_bits: Vec<u32> = frame.output.as_slice().iter().map(|v| v.to_bits()).collect();
        let direct_bits: Vec<u32> = expected.output.as_slice().iter().map(|v| v.to_bits()).collect();
        assert_eq!(wire_bits, direct_bits, "round {round}: socket-served output differs bitwise");
        assert_eq!(frame.tag.as_deref(), Some("loopback"), "tag echoes through the wire");
        assert_eq!(frame.model_version, expected.model_version);
        assert!(frame.batch_samples as usize >= samples);
    }
    let _ = gateway.shutdown();
}

#[test]
fn pipelined_requests_all_settle_with_matching_correlation_ids() {
    let gateway = start_gateway();
    let mut tcp = GatewayClient::connect(gateway.local_addr(), MAX_FRAME).expect("client connects");
    tcp.set_read_timeout(Some(Duration::from_secs(30))).unwrap();

    let x = Tensor::ones(&[1, IN]);
    let mut waiting: std::collections::HashSet<u64> = std::collections::HashSet::new();
    for _ in 0..32 {
        let corr = tcp.send("mlp", x.clone(), Priority::Interactive, None, None).expect("send");
        assert!(waiting.insert(corr), "correlation ids must be unique");
    }
    while !waiting.is_empty() {
        let reply = tcp.recv().expect("reply arrives");
        let corr = reply.correlation_id().expect("per-request reply");
        assert!(waiting.remove(&corr), "unexpected or duplicate correlation id {corr}");
        match reply {
            Reply::Response(frame) => assert_eq!(frame.output.shape(), &[1, OUT]),
            Reply::Backpressure(_) => {} // shed under load: allowed, still settles the id
            other => panic!("unexpected reply {other:?}"),
        }
    }
    let _ = gateway.shutdown();
}

#[test]
fn unknown_model_and_bad_input_map_to_typed_error_frames() {
    let gateway = start_gateway();
    let mut tcp = GatewayClient::connect(gateway.local_addr(), MAX_FRAME).expect("client connects");

    let reply =
        tcp.call("nonexistent", Tensor::ones(&[1, IN]), Priority::Batch, None, None).expect("call completes");
    let Reply::Error(frame) = reply else { panic!("expected error frame, got {reply:?}") };
    assert_eq!(frame.code, ServeError::UnknownModel(String::new()).code());
    match frame.to_serve_error() {
        Some(ServeError::UnknownModel(msg)) => assert!(msg.contains("nonexistent")),
        other => panic!("wrong reconstruction: {other:?}"),
    }

    // 1-D input: rejected by admission validation (sample axis required).
    let reply =
        tcp.call("mlp", Tensor::ones(&[IN]), Priority::Interactive, None, None).expect("call completes");
    let Reply::Error(frame) = reply else { panic!("expected error frame, got {reply:?}") };
    assert_eq!(frame.code, ServeError::BadInput(String::new()).code());
    let _ = gateway.shutdown();
}

#[test]
fn deadline_budget_travels_the_wire() {
    let gateway = start_gateway();
    let mut tcp = GatewayClient::connect(gateway.local_addr(), MAX_FRAME).expect("client connects");
    // A generous deadline must not interfere with a healthy request.
    let reply = tcp
        .call("mlp", Tensor::ones(&[1, IN]), Priority::Interactive, Some(Duration::from_secs(30)), None)
        .expect("call completes");
    assert!(matches!(reply, Reply::Response(_)), "got {reply:?}");
    let _ = gateway.shutdown();
}

#[test]
fn malformed_bytes_get_a_protocol_error_frame_then_disconnect() {
    use std::io::Write;
    let gateway = start_gateway();
    let addr = gateway.local_addr();

    // Garbage kind byte inside a well-formed length prefix.
    let mut raw = std::net::TcpStream::connect(addr).unwrap();
    let mut wire = Vec::new();
    wire.extend_from_slice(&2u32.to_le_bytes());
    wire.extend_from_slice(&[0xEE, 0xEE]);
    raw.write_all(&wire).unwrap();
    drop(raw);

    // Declared length beyond the server cap: rejected from the prefix alone.
    let mut raw = std::net::TcpStream::connect(addr).unwrap();
    raw.write_all(&u32::MAX.to_le_bytes()).unwrap();
    drop(raw);

    // The gateway survives both and keeps serving well-formed clients.
    let mut tcp = GatewayClient::connect(addr, MAX_FRAME).expect("client connects");
    let reply = tcp.call("mlp", Tensor::ones(&[1, IN]), Priority::Interactive, None, None).expect("call");
    assert!(matches!(reply, Reply::Response(_)));
    let _ = gateway.shutdown();
}

#[test]
fn protocol_error_reply_carries_code_zero() {
    use std::io::{Read, Write};
    let gateway = start_gateway();
    let mut raw = std::net::TcpStream::connect(gateway.local_addr()).unwrap();
    let mut wire = Vec::new();
    wire.extend_from_slice(&2u32.to_le_bytes());
    wire.extend_from_slice(&[0xEE, 0xEE]);
    raw.write_all(&wire).unwrap();

    // Read whatever the gateway sends before closing; it must decode to an
    // error frame with the reserved protocol code.
    let mut buf = Vec::new();
    raw.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    let mut chunk = [0u8; 4096];
    loop {
        match raw.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(_) => break,
        }
    }
    let (frame, _) =
        quadra_gateway::decode_frame(&buf, MAX_FRAME).expect("reply decodes").expect("reply is complete");
    match frame {
        quadra_gateway::Frame::Error(e) => {
            assert_eq!(e.code, quadra_gateway::PROTOCOL_ERROR_CODE);
            assert_eq!(e.correlation_id, 0);
            assert!(!e.message.is_empty());
        }
        other => panic!("expected protocol error frame, got {other:?}"),
    }
    let _ = gateway.shutdown();
}
