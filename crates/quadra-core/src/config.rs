//! Model-structure configuration files and the construction function that
//! turns them into runnable models.
//!
//! The paper's manual construction flow starts from a "structure configuration
//! file" describing depth, width and layer types, which is then fed to a
//! construction function that assembles the model as a layer sequence.
//! [`ModelConfig`] is that configuration file (serialisable to JSON), and
//! [`build_model`] is the construction function.

use crate::neuron::NeuronType;
use crate::qconv::QuadraticConv2d;
use crate::qlinear::QuadraticLinear;
use quadra_nn::{
    AvgPool2d, BatchNorm2d, Conv2d, Dropout, Flatten, GlobalAvgPool, Layer, Linear, MaxPool2d, Relu,
    Residual, Sequential,
};
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::path::Path;

/// One entry of a model-structure configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum LayerSpec {
    /// First-order convolution (+ optional batch-norm and ReLU).
    Conv {
        /// Output channels.
        out_channels: usize,
        /// Square kernel size.
        kernel: usize,
        /// Stride.
        stride: usize,
        /// Zero padding.
        padding: usize,
        /// Groups (`in_channels` for depth-wise convolution).
        groups: usize,
        /// Append a BatchNorm2d after the convolution.
        batch_norm: bool,
        /// Append a ReLU after the (optional) batch-norm.
        relu: bool,
    },
    /// Quadratic convolution of the given neuron type (+ optional BN / ReLU).
    QuadraticConv {
        /// Neuron design.
        neuron: NeuronType,
        /// Output channels.
        out_channels: usize,
        /// Square kernel size.
        kernel: usize,
        /// Stride.
        stride: usize,
        /// Zero padding.
        padding: usize,
        /// Groups.
        groups: usize,
        /// Append a BatchNorm2d (strongly recommended: the second-order term
        /// produces extreme values, design insight 2 of the paper).
        batch_norm: bool,
        /// Append a ReLU.
        relu: bool,
    },
    /// Max pooling with a square window (stride = window).
    MaxPool {
        /// Window size.
        kernel: usize,
    },
    /// Average pooling with a square window (stride = window).
    AvgPool {
        /// Window size.
        kernel: usize,
    },
    /// Global average pooling (`[n,c,h,w] -> [n,c]`).
    GlobalAvgPool,
    /// Flatten to `[n, features]`.
    Flatten,
    /// Fully connected layer (+ optional ReLU).
    Linear {
        /// Output features.
        out_features: usize,
        /// Append a ReLU.
        relu: bool,
    },
    /// Quadratic fully connected layer of the given neuron type.
    QuadraticLinear {
        /// Neuron design.
        neuron: NeuronType,
        /// Output features.
        out_features: usize,
    },
    /// Dropout with the given probability.
    Dropout {
        /// Drop probability.
        p: f32,
    },
    /// Residual block wrapping a body of layer specs, with an optional 1×1
    /// projection shortcut (required whenever the body changes channels or
    /// spatial size).
    Residual {
        /// The residual body.
        body: Vec<LayerSpec>,
        /// Use a projection (1×1 convolution) shortcut.
        projection: bool,
        /// Apply ReLU after the addition.
        final_relu: bool,
    },
}

impl LayerSpec {
    /// Convenience constructor: 3×3 first-order convolution with BN + ReLU.
    pub fn conv3x3(out_channels: usize) -> Self {
        LayerSpec::Conv {
            out_channels,
            kernel: 3,
            stride: 1,
            padding: 1,
            groups: 1,
            batch_norm: true,
            relu: true,
        }
    }

    /// Convenience constructor: 3×3 quadratic convolution with BN + ReLU.
    pub fn qconv3x3(neuron: NeuronType, out_channels: usize) -> Self {
        LayerSpec::QuadraticConv {
            neuron,
            out_channels,
            kernel: 3,
            stride: 1,
            padding: 1,
            groups: 1,
            batch_norm: true,
            relu: true,
        }
    }

    /// True for convolution-type entries (first-order or quadratic).
    pub fn is_conv(&self) -> bool {
        matches!(self, LayerSpec::Conv { .. } | LayerSpec::QuadraticConv { .. })
    }

    /// True for quadratic entries (conv or linear).
    pub fn is_quadratic(&self) -> bool {
        matches!(self, LayerSpec::QuadraticConv { .. } | LayerSpec::QuadraticLinear { .. })
    }
}

/// A complete model-structure configuration ("configuration file").
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelConfig {
    /// Model name used in reports and file names.
    pub name: String,
    /// Number of input channels (3 for RGB images).
    pub input_channels: usize,
    /// Input spatial size (square images).
    pub image_size: usize,
    /// Number of output classes of the classifier head.
    pub num_classes: usize,
    /// The layer sequence.
    pub layers: Vec<LayerSpec>,
}

impl ModelConfig {
    /// Create a configuration.
    pub fn new(
        name: impl Into<String>,
        input_channels: usize,
        image_size: usize,
        num_classes: usize,
        layers: Vec<LayerSpec>,
    ) -> Self {
        ModelConfig { name: name.into(), input_channels, image_size, num_classes, layers }
    }

    /// Serialise to pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("ModelConfig serialises")
    }

    /// Parse from JSON.
    pub fn from_json(json: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(json)
    }

    /// Write the configuration file to disk.
    pub fn save(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        std::fs::write(path, self.to_json())
    }

    /// Load a configuration file from disk.
    pub fn load(path: impl AsRef<Path>) -> std::io::Result<Self> {
        let text = std::fs::read_to_string(path)?;
        Self::from_json(&text).map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
    }

    /// Number of convolution entries (first-order or quadratic), counting
    /// recursively into residual bodies. This is the "#Layer" column of Table 3.
    pub fn conv_layer_count(&self) -> usize {
        fn count(specs: &[LayerSpec]) -> usize {
            specs
                .iter()
                .map(|s| match s {
                    LayerSpec::Conv { .. } | LayerSpec::QuadraticConv { .. } => 1,
                    LayerSpec::Residual { body, .. } => count(body),
                    _ => 0,
                })
                .sum()
        }
        count(&self.layers)
    }

    /// Number of residual blocks at the top level.
    pub fn residual_block_count(&self) -> usize {
        self.layers.iter().filter(|s| matches!(s, LayerSpec::Residual { .. })).count()
    }

    /// True if any layer is quadratic.
    pub fn is_quadratic(&self) -> bool {
        fn any_quad(specs: &[LayerSpec]) -> bool {
            specs.iter().any(|s| match s {
                LayerSpec::Residual { body, .. } => any_quad(body),
                other => other.is_quadratic(),
            })
        }
        any_quad(&self.layers)
    }
}

/// Tracks tensor geometry while walking a configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Geometry {
    /// Current channel count (or feature count after flattening).
    pub channels: usize,
    /// Current spatial extent (0 after flattening).
    pub spatial: usize,
    /// Whether the tensor has been flattened to 2-D.
    pub flat: bool,
}

impl Geometry {
    /// Features seen by a dense layer at this point.
    pub fn features(&self) -> usize {
        if self.flat || self.spatial == 0 {
            self.channels
        } else {
            self.channels * self.spatial * self.spatial
        }
    }
}

/// Walk a layer-spec list, calling `visit` with the geometry *before* each spec
/// and returning the geometry after the last one.
pub fn walk_geometry(
    specs: &[LayerSpec],
    mut geom: Geometry,
    visit: &mut impl FnMut(&LayerSpec, Geometry),
) -> Geometry {
    for spec in specs {
        visit(spec, geom);
        geom = advance_geometry(spec, geom);
    }
    geom
}

/// Geometry after applying a single spec.
pub fn advance_geometry(spec: &LayerSpec, geom: Geometry) -> Geometry {
    let out_hw = |size: usize, k: usize, s: usize, p: usize| (size + 2 * p).saturating_sub(k) / s + 1;
    match spec {
        LayerSpec::Conv { out_channels, kernel, stride, padding, .. }
        | LayerSpec::QuadraticConv { out_channels, kernel, stride, padding, .. } => Geometry {
            channels: *out_channels,
            spatial: out_hw(geom.spatial, *kernel, *stride, *padding),
            flat: false,
        },
        LayerSpec::MaxPool { kernel } | LayerSpec::AvgPool { kernel } => {
            Geometry { channels: geom.channels, spatial: geom.spatial / kernel, flat: false }
        }
        LayerSpec::GlobalAvgPool => Geometry { channels: geom.channels, spatial: 0, flat: true },
        LayerSpec::Flatten => Geometry { channels: geom.features(), spatial: 0, flat: true },
        LayerSpec::Linear { out_features, .. } | LayerSpec::QuadraticLinear { out_features, .. } => {
            Geometry { channels: *out_features, spatial: 0, flat: true }
        }
        LayerSpec::Dropout { .. } => geom,
        LayerSpec::Residual { body, .. } => {
            let mut g = geom;
            for s in body {
                g = advance_geometry(s, g);
            }
            g
        }
    }
}

/// Build a runnable model from a configuration file (the paper's construction
/// function). The random generator seeds every weight tensor, so the same
/// configuration and seed always produce the same model.
pub fn build_model(config: &ModelConfig, rng: &mut impl Rng) -> Sequential {
    let geom = Geometry { channels: config.input_channels, spatial: config.image_size, flat: false };
    let (layers, _g) = build_specs(&config.layers, geom, rng);
    Sequential::new(layers)
}

fn build_specs(
    specs: &[LayerSpec],
    mut geom: Geometry,
    rng: &mut impl Rng,
) -> (Vec<Box<dyn Layer>>, Geometry) {
    let mut layers: Vec<Box<dyn Layer>> = Vec::new();
    for spec in specs {
        match spec {
            LayerSpec::Conv { out_channels, kernel, stride, padding, groups, batch_norm, relu } => {
                layers.push(Box::new(Conv2d::new(
                    geom.channels,
                    *out_channels,
                    *kernel,
                    *stride,
                    *padding,
                    *groups,
                    !*batch_norm,
                    rng,
                )));
                if *batch_norm {
                    layers.push(Box::new(BatchNorm2d::new(*out_channels)));
                }
                if *relu {
                    layers.push(Box::new(Relu::new()));
                }
            }
            LayerSpec::QuadraticConv {
                neuron,
                out_channels,
                kernel,
                stride,
                padding,
                groups,
                batch_norm,
                relu,
            } => {
                layers.push(Box::new(QuadraticConv2d::new(
                    *neuron,
                    geom.channels,
                    *out_channels,
                    *kernel,
                    *stride,
                    *padding,
                    *groups,
                    rng,
                )));
                if *batch_norm {
                    layers.push(Box::new(BatchNorm2d::new(*out_channels)));
                }
                if *relu {
                    layers.push(Box::new(Relu::new()));
                }
            }
            LayerSpec::MaxPool { kernel } => layers.push(Box::new(MaxPool2d::new(*kernel))),
            LayerSpec::AvgPool { kernel } => layers.push(Box::new(AvgPool2d::new(*kernel))),
            LayerSpec::GlobalAvgPool => layers.push(Box::new(GlobalAvgPool::new())),
            LayerSpec::Flatten => layers.push(Box::new(Flatten::new())),
            LayerSpec::Linear { out_features, relu } => {
                layers.push(Box::new(Linear::new(geom.features(), *out_features, true, rng)));
                if *relu {
                    layers.push(Box::new(Relu::new()));
                }
            }
            LayerSpec::QuadraticLinear { neuron, out_features } => {
                layers.push(Box::new(QuadraticLinear::new(*neuron, geom.features(), *out_features, rng)));
            }
            LayerSpec::Dropout { p } => layers.push(Box::new(Dropout::new(*p, rng.gen()))),
            LayerSpec::Residual { body, projection, final_relu } => {
                let in_geom = geom;
                let (body_layers, out_geom) = build_specs(body, geom, rng);
                let body_seq = Sequential::new(body_layers);
                let block: Box<dyn Layer> = if *projection {
                    let stride = if out_geom.spatial > 0 && in_geom.spatial > out_geom.spatial {
                        in_geom.spatial / out_geom.spatial
                    } else {
                        1
                    };
                    let shortcut: Box<dyn Layer> = Box::new(Conv2d::new(
                        in_geom.channels,
                        out_geom.channels,
                        1,
                        stride,
                        0,
                        1,
                        false,
                        rng,
                    ));
                    Box::new(Residual::with_shortcut(body_seq, shortcut, *final_relu))
                } else {
                    Box::new(Residual::new(body_seq, *final_relu))
                };
                layers.push(block);
            }
        }
        geom = advance_geometry(spec, geom);
    }
    (layers, geom)
}

#[cfg(test)]
mod tests {
    use super::*;
    use quadra_tensor::Tensor;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tiny_config() -> ModelConfig {
        ModelConfig::new(
            "tiny-cnn",
            3,
            8,
            4,
            vec![
                LayerSpec::conv3x3(8),
                LayerSpec::MaxPool { kernel: 2 },
                LayerSpec::qconv3x3(NeuronType::Ours, 8),
                LayerSpec::GlobalAvgPool,
                LayerSpec::Linear { out_features: 4, relu: false },
            ],
        )
    }

    #[test]
    fn geometry_walk_matches_expectations() {
        let cfg = tiny_config();
        let geom = Geometry { channels: 3, spatial: 8, flat: false };
        let mut seen = Vec::new();
        let end = walk_geometry(&cfg.layers, geom, &mut |spec, g| {
            seen.push((spec.is_conv(), g.channels, g.spatial))
        });
        assert_eq!(seen[0], (true, 3, 8));
        assert_eq!(seen[2], (true, 8, 4));
        assert_eq!(end.channels, 4);
        assert!(end.flat);
        assert_eq!(end.features(), 4);
    }

    #[test]
    fn build_and_run_tiny_model() {
        let cfg = tiny_config();
        let mut rng = StdRng::seed_from_u64(0);
        let mut model = build_model(&cfg, &mut rng);
        let x = Tensor::randn(&[2, 3, 8, 8], 0.0, 1.0, &mut rng);
        let y = model.forward(&x, true);
        assert_eq!(y.shape(), &[2, 4]);
        let gin = model.backward(&Tensor::ones_like(&y));
        assert_eq!(gin.shape(), x.shape());
        assert!(cfg.is_quadratic());
        assert_eq!(cfg.conv_layer_count(), 2);
    }

    #[test]
    fn residual_config_with_projection_builds() {
        let cfg = ModelConfig::new(
            "tiny-res",
            3,
            8,
            2,
            vec![
                LayerSpec::conv3x3(8),
                LayerSpec::Residual {
                    body: vec![
                        LayerSpec::conv3x3(8),
                        LayerSpec::Conv {
                            out_channels: 8,
                            kernel: 3,
                            stride: 1,
                            padding: 1,
                            groups: 1,
                            batch_norm: true,
                            relu: false,
                        },
                    ],
                    projection: false,
                    final_relu: true,
                },
                LayerSpec::Residual {
                    body: vec![LayerSpec::Conv {
                        out_channels: 16,
                        kernel: 3,
                        stride: 2,
                        padding: 1,
                        groups: 1,
                        batch_norm: true,
                        relu: true,
                    }],
                    projection: true,
                    final_relu: true,
                },
                LayerSpec::GlobalAvgPool,
                LayerSpec::Linear { out_features: 2, relu: false },
            ],
        );
        let mut rng = StdRng::seed_from_u64(1);
        let mut model = build_model(&cfg, &mut rng);
        let x = Tensor::randn(&[2, 3, 8, 8], 0.0, 1.0, &mut rng);
        let y = model.forward(&x, true);
        assert_eq!(y.shape(), &[2, 2]);
        let gin = model.backward(&Tensor::ones_like(&y));
        assert_eq!(gin.shape(), x.shape());
        assert_eq!(cfg.residual_block_count(), 2);
        assert_eq!(cfg.conv_layer_count(), 4);
        assert!(!cfg.is_quadratic());
    }

    #[test]
    fn json_roundtrip_preserves_config() {
        let cfg = tiny_config();
        let json = cfg.to_json();
        let back = ModelConfig::from_json(&json).unwrap();
        assert_eq!(back, cfg);
        assert!(json.contains("tiny-cnn"));
        assert!(ModelConfig::from_json("{not json").is_err());
    }

    #[test]
    fn save_and_load_roundtrip() {
        let cfg = tiny_config();
        let dir = std::env::temp_dir().join("quadralib_test_cfg.json");
        cfg.save(&dir).unwrap();
        let back = ModelConfig::load(&dir).unwrap();
        assert_eq!(back, cfg);
        std::fs::remove_file(&dir).ok();
    }

    #[test]
    fn depthwise_separable_spec_builds() {
        // MobileNet-style pair: depthwise 3x3 (groups == channels) then pointwise 1x1.
        let cfg = ModelConfig::new(
            "dw",
            3,
            8,
            2,
            vec![
                LayerSpec::Conv {
                    out_channels: 8,
                    kernel: 3,
                    stride: 1,
                    padding: 1,
                    groups: 1,
                    batch_norm: true,
                    relu: true,
                },
                LayerSpec::Conv {
                    out_channels: 8,
                    kernel: 3,
                    stride: 1,
                    padding: 1,
                    groups: 8,
                    batch_norm: true,
                    relu: true,
                },
                LayerSpec::Conv {
                    out_channels: 16,
                    kernel: 1,
                    stride: 1,
                    padding: 0,
                    groups: 1,
                    batch_norm: true,
                    relu: true,
                },
                LayerSpec::GlobalAvgPool,
                LayerSpec::Linear { out_features: 2, relu: false },
            ],
        );
        let mut rng = StdRng::seed_from_u64(2);
        let mut model = build_model(&cfg, &mut rng);
        let y = model.forward(&Tensor::randn(&[1, 3, 8, 8], 0.0, 1.0, &mut rng), true);
        assert_eq!(y.shape(), &[1, 2]);
    }

    #[test]
    fn flatten_then_linear_uses_feature_count() {
        let cfg = ModelConfig::new(
            "flat",
            1,
            4,
            3,
            vec![LayerSpec::Flatten, LayerSpec::Linear { out_features: 3, relu: false }],
        );
        let mut rng = StdRng::seed_from_u64(3);
        let mut model = build_model(&cfg, &mut rng);
        let y = model.forward(&Tensor::randn(&[2, 1, 4, 4], 0.0, 1.0, &mut rng), true);
        assert_eq!(y.shape(), &[2, 3]);
        // Linear weight should be 16x3.
        assert_eq!(model.params()[0].value.shape(), &[16, 3]);
    }

    #[test]
    fn spec_helpers() {
        assert!(LayerSpec::conv3x3(4).is_conv());
        assert!(!LayerSpec::conv3x3(4).is_quadratic());
        assert!(LayerSpec::qconv3x3(NeuronType::Ours, 4).is_quadratic());
        assert!(!LayerSpec::Flatten.is_conv());
        let dropout_cfg = ModelConfig::new(
            "d",
            1,
            4,
            2,
            vec![
                LayerSpec::Flatten,
                LayerSpec::Dropout { p: 0.5 },
                LayerSpec::Linear { out_features: 2, relu: true },
                LayerSpec::QuadraticLinear { neuron: NeuronType::Ours, out_features: 2 },
            ],
        );
        let mut rng = StdRng::seed_from_u64(4);
        let mut model = build_model(&dropout_cfg, &mut rng);
        let y = model.forward(&Tensor::randn(&[2, 1, 4, 4], 0.0, 1.0, &mut rng), true);
        assert_eq!(y.shape(), &[2, 2]);
        assert!(dropout_cfg.is_quadratic());
    }
}
