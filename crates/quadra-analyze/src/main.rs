//! CLI entry point: `cargo run -p quadra-analyze -- [--deny] [--root DIR]
//! [--report PATH] [--baseline PATH] [--write-baseline PATH] [--no-cache]
//! [--cache PATH]`.
//!
//! Prints the human diff-style report to stdout, writes the machine-readable
//! `ANALYZE_report.json` at the workspace root (or `--report PATH`), and with
//! `--deny` exits non-zero when any unsuppressed finding remains — the mode
//! CI runs as a blocking gate.
//!
//! With `--baseline PATH`, `--deny` fails only on findings **beyond** the
//! committed baseline (ratcheting: existing debt is tolerated, new debt is
//! not, and the baseline may only shrink). `--write-baseline PATH` snapshots
//! the current unsuppressed findings to ratchet the file down after fixes.
//!
//! Runs are incremental: the full analysis output is cached in
//! `target/analyze-cache.json` keyed by per-file content hashes plus a
//! config/version fingerprint, and an unchanged workspace replays the
//! previous output byte-for-byte without re-lexing anything. `--no-cache`
//! forces a fresh run; `--cache PATH` relocates the cache file.

use quadra_analyze::baseline::Baseline;
use quadra_analyze::cache::{fnv1a, CacheFile};
use quadra_analyze::{analyze_sources, collect_workspace_sources, AnalyzeConfig, Report};
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

fn main() -> ExitCode {
    let mut deny = false;
    let mut no_cache = false;
    let mut root: Option<PathBuf> = None;
    let mut report_path: Option<PathBuf> = None;
    let mut baseline_path: Option<PathBuf> = None;
    let mut write_baseline_path: Option<PathBuf> = None;
    let mut cache_path: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--deny" => deny = true,
            "--no-cache" => no_cache = true,
            "--root" => root = args.next().map(PathBuf::from),
            "--report" => report_path = args.next().map(PathBuf::from),
            "--baseline" => baseline_path = args.next().map(PathBuf::from),
            "--write-baseline" => write_baseline_path = args.next().map(PathBuf::from),
            "--cache" => cache_path = args.next().map(PathBuf::from),
            "--help" | "-h" => {
                println!(
                    "usage: quadra-analyze [--deny] [--root DIR] [--report PATH] \
                     [--baseline PATH] [--write-baseline PATH] [--no-cache] [--cache PATH]"
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("quadra-analyze: unknown argument `{other}`");
                return ExitCode::from(2);
            }
        }
    }
    let root = match root.or_else(find_workspace_root) {
        Some(r) => r,
        None => {
            eprintln!("quadra-analyze: could not locate the workspace root (no Cargo.toml with [workspace] above the current directory); pass --root");
            return ExitCode::from(2);
        }
    };
    let cfg = AnalyzeConfig::workspace();

    let started = Instant::now();
    let sources = match collect_workspace_sources(&root) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("quadra-analyze: failed to read sources under {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };
    // Fingerprint everything besides file contents that shapes the output:
    // the policy config, the analyzer version, and the pass list.
    let fingerprint = fnv1a(
        format!("{:?}|{}|{}", cfg, env!("CARGO_PKG_VERSION"), quadra_analyze::source::PASSES.join(","))
            .as_bytes(),
    );
    let cache_file = cache_path.unwrap_or_else(|| root.join("target").join("analyze-cache.json"));
    let cached: Option<CacheFile> = if no_cache {
        None
    } else {
        std::fs::read_to_string(&cache_file).ok().and_then(|text| CacheFile::from_json(&text).ok())
    };

    let (report, report_json, human, cache_note) = match cached {
        Some(c) if c.matches(fingerprint, &sources) => {
            // Unchanged workspace: replay the previous run verbatim.
            let report = match Report::from_json(&c.report_json) {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("quadra-analyze: corrupt cache at {}: {e}", cache_file.display());
                    return ExitCode::from(2);
                }
            };
            let note = format!("cache hit: all {} file hashes unchanged", sources.len());
            (report, c.report_json, c.human, note)
        }
        stale => {
            let report = analyze_sources(&sources, &cfg);
            let report_json = report.to_json();
            let human = report.human();
            let entry = CacheFile::new(fingerprint, &sources, report_json.clone(), human.clone());
            if !no_cache {
                // Best-effort: a missing target/ or read-only checkout only
                // costs the next run a re-analysis.
                let _ = std::fs::create_dir_all(cache_file.parent().unwrap_or(&root));
                let _ = std::fs::write(&cache_file, entry.to_json());
            }
            let note = match (no_cache, stale) {
                (true, _) => "cache disabled".to_string(),
                (false, None) => "cache miss: no previous run".to_string(),
                (false, Some(_)) => "cache miss: inputs changed".to_string(),
            };
            (report, report_json, human, note)
        }
    };

    print!("{human}");
    let out = report_path.unwrap_or_else(|| root.join("ANALYZE_report.json"));
    if let Err(e) = std::fs::write(&out, &report_json) {
        eprintln!("quadra-analyze: failed to write {}: {e}", out.display());
        return ExitCode::from(2);
    }
    println!("report written to {}", out.display());
    println!("analysis completed in {}ms ({cache_note})", started.elapsed().as_millis());

    if let Some(path) = write_baseline_path {
        let snapshot = Baseline::from_report(&report);
        if let Err(e) = std::fs::write(&path, snapshot.to_json()) {
            eprintln!("quadra-analyze: failed to write baseline {}: {e}", path.display());
            return ExitCode::from(2);
        }
        println!("baseline written to {} ({} entr(y/ies))", path.display(), snapshot.entries.len());
    }

    if let Some(path) = &baseline_path {
        let baseline = match std::fs::read_to_string(path)
            .map_err(|e| e.to_string())
            .and_then(|t| Baseline::from_json(&t))
        {
            Ok(b) => b,
            Err(e) => {
                eprintln!("quadra-analyze: failed to load baseline {}: {e}", path.display());
                return ExitCode::from(2);
            }
        };
        let new = baseline.new_findings(&report);
        let stale = baseline.stale_count(&report);
        if stale > 0 {
            println!(
                "note: {stale} baseline entr(y/ies) no longer fire — ratchet down with \
                 --write-baseline {}",
                path.display()
            );
        }
        if !new.is_empty() {
            eprintln!(
                "quadra-analyze: baseline drift: {} new finding(s) not in {}:",
                new.len(),
                path.display()
            );
            for f in &new {
                eprintln!("  {}:{}: [{}:{}] {}", f.file, f.line, f.pass, f.check, f.message);
            }
            if deny {
                return ExitCode::FAILURE;
            }
        }
        // Under a baseline, tolerated findings do not fail the gate.
        return ExitCode::SUCCESS;
    }

    if deny && report.unsuppressed_count() > 0 {
        eprintln!("quadra-analyze: denying: {} unsuppressed finding(s)", report.unsuppressed_count());
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

/// Walk up from the current directory to the first `Cargo.toml` declaring
/// `[workspace]`.
fn find_workspace_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}
