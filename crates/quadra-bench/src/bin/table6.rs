//! Table 6 — object detection on the synthetic VOC stand-in: per-class AP and
//! mAP of the first-order detector vs the QuadraNN detector, trained from
//! scratch and from a classification-pretrained backbone.
//!
//! Regenerate with `cargo run -p quadra-bench --release --bin table6`.

use quadra_bench::{print_table, scale, Scale};
use quadra_core::NeuronType;
use quadra_data::DetectionDataset;
use quadra_models::{Detector, DetectorConfig};

fn main() {
    let (n_train, n_test, epochs, pre_epochs) = match scale() {
        Scale::Full => (400usize, 100usize, 25usize, 10usize),
        Scale::Quick => (80, 30, 8, 3),
    };
    let num_classes = 4usize;
    let train = DetectionDataset::generate(n_train, num_classes, 32, 2, 41);
    let test = DetectionDataset::generate(n_test, num_classes, 32, 2, 42);

    let configs = [("1st order", None::<NeuronType>), ("QuadraNN", Some(NeuronType::Ours))];
    let mut rows = Vec::new();
    for pretrained in [false, true] {
        for (name, quadratic) in configs {
            let det_cfg = DetectorConfig {
                num_classes,
                image_size: 32,
                backbone_width: 8,
                grid: 4,
                quadratic,
                seed: 43,
            };
            let mut det = Detector::new(det_cfg);
            if pretrained {
                // "Pre-training": train a twin detector's backbone on the
                // classification-style objective first (longer exposure to the
                // data distribution), then copy the backbone weights over —
                // standing in for ILSVRC-2012 pre-training.
                let mut pre = Detector::new(DetectorConfig { seed: 44, ..det_cfg });
                pre.train(&train, pre_epochs, 16, 0.05, 45);
                det.load_backbone_from(&pre);
            }
            det.train(&train, epochs, 16, 0.05, 46);
            let report = det.evaluate_map(&test, 0.3);
            let mut row = vec![name.to_string(), if pretrained { "yes".into() } else { "no".into() }];
            row.extend(report.per_class_ap.iter().map(|ap| format!("{:.2}", ap)));
            row.push(format!("{:.3}", report.map));
            rows.push(row);
        }
    }
    let mut headers: Vec<String> = vec!["Model".into(), "Pre-trained".into()];
    headers.extend((0..num_classes).map(|c| format!("class{}", c)));
    headers.push("mAP".into());
    let header_refs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    print_table("Table 6: detection AP per class and mAP (synthetic VOC stand-in)", &header_refs, &rows);
    println!("\nShape to reproduce: without pre-training the quadratic backbone clearly beats the");
    println!("first-order one; with pre-training both improve and QuadraNN keeps a small edge.");
}
