//! Multi-model serving with the request-lifecycle API: stand up a `Router`
//! over two CNN architectures with fair-share weights, drive both endpoints
//! from concurrent client threads using the `Request` builder (priority
//! classes, deadlines, tags), cancel an in-queue request, hot-reload one
//! endpoint's checkpoint without disturbing the other, shed load through the
//! bounded admission queue, and print the per-model serving metrics —
//! including the fair-share service-time ledger.
//!
//! Run with: `cargo run --release --example serving`

use quadralib::core::{build_model, LayerSpec, ModelConfig};
use quadralib::data::ShapeImageDataset;
use quadralib::nn::{ConstantLr, CrossEntropyLoss, Layer, Sgd, StateDict, Trainer, TrainerConfig};
use quadralib::serve::{AdmissionPolicy, BatchPolicy, Priority, Request, Router, ServeConfig, ServeError};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

fn cnn_config(name: &str, width: usize) -> ModelConfig {
    ModelConfig::new(
        name,
        3,
        16,
        4,
        vec![
            LayerSpec::Conv {
                out_channels: width,
                kernel: 3,
                stride: 1,
                padding: 1,
                groups: 1,
                batch_norm: true,
                relu: true,
            },
            LayerSpec::Conv {
                out_channels: 2 * width,
                kernel: 3,
                stride: 2,
                padding: 1,
                groups: 1,
                batch_norm: true,
                relu: true,
            },
            LayerSpec::GlobalAvgPool,
            LayerSpec::Linear { out_features: 4, relu: false },
        ],
    )
}

fn main() {
    // Two endpoints behind one router: a small "light" CNN and a wider
    // "heavy" one. The heavy endpoint gets 2× the fair-share weight, so a
    // light-model flood cannot crowd it off the CPU. Admission is bounded so
    // overload sheds instead of queueing.
    let config = |max_batch: usize, weight: u32| ServeConfig {
        workers: 2,
        policy: BatchPolicy {
            max_batch_size: max_batch,
            max_wait: Duration::from_millis(1),
            ..BatchPolicy::default()
        },
        admission: AdmissionPolicy { queue_capacity: Some(64), ..AdmissionPolicy::default() },
        weight,
    };
    let router = Router::builder()
        .endpoint("light", config(8, 1), || {
            Box::new(build_model(&cnn_config("light", 8), &mut StdRng::seed_from_u64(7)))
        })
        .endpoint("heavy", config(16, 2), || {
            Box::new(build_model(&cnn_config("heavy", 16), &mut StdRng::seed_from_u64(8)))
        })
        .start()
        .expect("router starts");

    // Closed-loop clients hammering both endpoints from their own threads,
    // mixing interactive and batch-class traffic through the Request builder.
    // Every request carries a deadline: under overload it is shed with
    // `DeadlineExceeded` instead of aging in the queue unnoticed.
    let run_clients = |label: &str| {
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let client = router.client();
                std::thread::spawn(move || {
                    let model = if t % 2 == 0 { "light" } else { "heavy" };
                    let priority = if t < 2 { Priority::Interactive } else { Priority::Batch };
                    let images = ShapeImageDataset::generate(32, 4, 16, 3, 0.05, t).images;
                    let (mut shed, mut expired) = (0u32, 0u32);
                    for i in 0..32 {
                        let x = images.narrow(0, i, 1).unwrap();
                        let request = Request::new(x)
                            .priority(priority)
                            .deadline(Duration::from_millis(500))
                            .tag(format!("client-{t}/{i}"));
                        match client.send(model, request).map(|handle| handle.wait()) {
                            Ok(Ok(response)) => {
                                assert_eq!(response.output.shape(), &[1, 4]);
                                assert_eq!(response.tag.as_deref(), Some(&*format!("client-{t}/{i}")));
                            }
                            Ok(Err(ServeError::DeadlineExceeded)) => expired += 1,
                            Ok(Err(e)) => panic!("serving failed: {e}"),
                            Err(ServeError::Overloaded { retry_after }) => {
                                // Bounded queues push back instead of buffering.
                                shed += 1;
                                std::thread::sleep(retry_after);
                            }
                            Err(e) => panic!("submit failed: {e}"),
                        }
                    }
                    (shed, expired)
                })
            })
            .collect();
        let (shed, expired) = handles
            .into_iter()
            .map(|h| h.join().unwrap())
            .fold((0u32, 0u32), |(s, e), (s2, e2)| (s + s2, e + e2));
        println!("[{label}] shed at admission: {shed}, deadline-expired in queue: {expired}");
        println!("{}\n", router.metrics().describe());
    };
    run_clients("fresh weights");

    // Cancellation: a queued request can be withdrawn; one already riding a
    // batch (or already answered) completes normally and `wait` returns it.
    let client = router.client();
    let images = ShapeImageDataset::generate(2, 4, 16, 3, 0.05, 99).images;
    let handle = client
        .send("heavy", Request::new(images.narrow(0, 0, 1).unwrap()).tag("maybe-cancelled"))
        .expect("admitted");
    handle.cancel();
    match handle.wait() {
        Err(ServeError::Cancelled) => println!("request cancelled while queued"),
        Ok(response) => println!("cancel raced dispatch: served by batch {}", response.batch_id),
        Err(e) => panic!("unexpected: {e}"),
    }

    // Meanwhile, "retrain" the light model and hot-reload its checkpoint:
    // requests issued after `reload` returns are answered by the new version,
    // and the heavy endpoint keeps serving version 0 untouched.
    let mut trained = build_model(&cnn_config("light", 8), &mut StdRng::seed_from_u64(7));
    let data = ShapeImageDataset::generate(64, 4, 16, 3, 0.05, 42);
    Trainer::new(TrainerConfig { epochs: 2, batch_size: 16, ..TrainerConfig::default() }).fit(
        &mut trained,
        &CrossEntropyLoss::new(),
        &mut Sgd::plain(0.05),
        &ConstantLr::new(0.05),
        &data.images,
        &data.labels,
        None,
    );
    trained.clear_cache();
    let version = router.reload("light", StateDict::from_layer(&trained)).expect("compatible checkpoint");
    println!(
        "hot-reloaded `light` as version {version}; `heavy` still serves version {}",
        router.version("heavy").unwrap()
    );
    run_clients("after reload");

    let metrics = router.shutdown();
    println!("final:\n{}", metrics.describe());
    if let (Some(light), Some(heavy)) = (metrics.service_share("light"), metrics.service_share("heavy")) {
        println!("\nfair-share service split: light {:.0}% / heavy {:.0}%", light * 100.0, heavy * 100.0);
    }
    for snapshot in &metrics.models {
        println!("\n[{}] batch occupancy:\n{}", snapshot.model, snapshot.occupancy_ascii(40));
    }
}
