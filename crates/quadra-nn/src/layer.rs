//! The [`Layer`] trait plus the [`Sequential`] and [`Residual`] containers.

use crate::param::Param;
use quadra_tensor::Tensor;

/// The interface every network component implements.
///
/// A layer is a stateful object: [`Layer::forward`] computes the output for a
/// batch and caches whatever intermediate values the layer's backward pass will
/// need; [`Layer::backward`] consumes the cache, accumulates parameter
/// gradients, and returns the gradient with respect to the layer's input.
///
/// The cache is deliberately explicit: its size is reported by
/// [`Layer::cached_bytes`] so the memory profiler in `quadra-core` can
/// reproduce the paper's training-memory measurements, and quadratic layers can
/// trade cache size against recomputation (the hybrid back-propagation scheme).
pub trait Layer {
    /// Compute the layer output for `x`. `train` selects training behaviour
    /// (dropout active, batch-norm uses batch statistics) versus inference.
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor;

    /// Propagate `grad_out` (gradient w.r.t. the layer output) backwards,
    /// accumulating parameter gradients and returning the gradient w.r.t. the
    /// layer input. Must be called after `forward`.
    fn backward(&mut self, grad_out: &Tensor) -> Tensor;

    /// Immutable access to the layer's trainable parameters.
    fn params(&self) -> Vec<&Param> {
        Vec::new()
    }

    /// Mutable access to the layer's trainable parameters (for the optimizer).
    fn params_mut(&mut self) -> Vec<&mut Param> {
        Vec::new()
    }

    /// Immutable access to the layer's named non-trainable buffers — state the
    /// forward pass depends on but no optimizer updates, such as batch-norm
    /// running statistics. Checkpointing persists these alongside the
    /// parameters; a model restored without them would normalise with
    /// zero-mean/unit-variance defaults and serve garbage in eval mode.
    fn buffers(&self) -> Vec<(&'static str, &Tensor)> {
        Vec::new()
    }

    /// Mutable access to the layer's named buffers (for checkpoint loading).
    /// Must yield the same names in the same order as [`Layer::buffers`].
    fn buffers_mut(&mut self) -> Vec<(&'static str, &mut Tensor)> {
        Vec::new()
    }

    /// Bytes of intermediate activations currently cached for backward.
    fn cached_bytes(&self) -> usize {
        0
    }

    /// Drop any cached activations (used after an optimizer step and by the
    /// gradient-checkpointing style hybrid back-propagation).
    fn clear_cache(&mut self) {}

    /// Total number of trainable scalars in the layer.
    fn param_count(&self) -> usize {
        self.params().iter().map(|p| p.numel()).sum()
    }

    /// Approximate multiply–accumulate count of the most recent forward pass.
    /// Used by the auto-builder's layer-performance indicator (Eq. 5).
    fn flops_last_forward(&self) -> usize {
        0
    }

    /// Enable or disable the layer's memory-saving backward mode, if it has
    /// one. First-order layers ignore this; the quadratic layers in
    /// `quadra-core` switch between default and hybrid back-propagation.
    /// Containers propagate the call to their children.
    fn set_memory_saving(&mut self, _enabled: bool) {}

    /// True if the layer is currently in its memory-saving backward mode.
    fn memory_saving(&self) -> bool {
        false
    }

    /// Short type tag, e.g. `"conv2d"` or `"quadratic_conv2d[ours]"`.
    fn layer_type(&self) -> &'static str;

    /// Human-readable one-line description used by the analysis tools.
    fn describe(&self) -> String {
        format!("{} ({} params)", self.layer_type(), self.param_count())
    }
}

/// A container applying layers one after another.
///
/// `Sequential` also exposes its children for inspection and surgery, which is
/// what the QDNN auto-builder uses for layer replacement and heuristic layer
/// reduction.
#[derive(Default)]
pub struct Sequential {
    layers: Vec<Box<dyn Layer>>,
}

impl Sequential {
    /// Build a sequential container from boxed layers.
    pub fn new(layers: Vec<Box<dyn Layer>>) -> Self {
        Sequential { layers }
    }

    /// An empty container.
    pub fn empty() -> Self {
        Sequential { layers: Vec::new() }
    }

    /// Append a layer.
    pub fn push(&mut self, layer: Box<dyn Layer>) {
        self.layers.push(layer);
    }

    /// Number of child layers.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// True if the container has no children.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// Immutable access to the children.
    pub fn layers(&self) -> &[Box<dyn Layer>] {
        &self.layers
    }

    /// Mutable access to the children (used by the auto-builder).
    pub fn layers_mut(&mut self) -> &mut Vec<Box<dyn Layer>> {
        &mut self.layers
    }

    /// Replace the child at `index`, returning the old layer.
    pub fn replace(&mut self, index: usize, layer: Box<dyn Layer>) -> Box<dyn Layer> {
        std::mem::replace(&mut self.layers[index], layer)
    }

    /// Remove and return the child at `index`.
    pub fn remove(&mut self, index: usize) -> Box<dyn Layer> {
        self.layers.remove(index)
    }

    /// Per-child parameter counts, useful for model summaries.
    pub fn param_counts(&self) -> Vec<usize> {
        self.layers.iter().map(|l| l.param_count()).collect()
    }
}

impl Layer for Sequential {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        let mut cur = x.clone();
        for layer in self.layers.iter_mut() {
            cur = layer.forward(&cur, train);
        }
        cur
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let mut grad = grad_out.clone();
        for layer in self.layers.iter_mut().rev() {
            grad = layer.backward(&grad);
        }
        grad
    }

    fn params(&self) -> Vec<&Param> {
        self.layers.iter().flat_map(|l| l.params()).collect()
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        self.layers.iter_mut().flat_map(|l| l.params_mut()).collect()
    }

    fn buffers(&self) -> Vec<(&'static str, &Tensor)> {
        self.layers.iter().flat_map(|l| l.buffers()).collect()
    }

    fn buffers_mut(&mut self) -> Vec<(&'static str, &mut Tensor)> {
        self.layers.iter_mut().flat_map(|l| l.buffers_mut()).collect()
    }

    fn cached_bytes(&self) -> usize {
        self.layers.iter().map(|l| l.cached_bytes()).sum()
    }

    fn clear_cache(&mut self) {
        for l in self.layers.iter_mut() {
            l.clear_cache();
        }
    }

    fn flops_last_forward(&self) -> usize {
        self.layers.iter().map(|l| l.flops_last_forward()).sum()
    }

    fn set_memory_saving(&mut self, enabled: bool) {
        for l in self.layers.iter_mut() {
            l.set_memory_saving(enabled);
        }
    }

    fn memory_saving(&self) -> bool {
        self.layers.iter().any(|l| l.memory_saving())
    }

    fn layer_type(&self) -> &'static str {
        "sequential"
    }

    fn describe(&self) -> String {
        let children: Vec<String> = self.layers.iter().map(|l| l.describe()).collect();
        format!("sequential[\n  {}\n]", children.join("\n  "))
    }
}

/// A residual block: `y = relu?(body(x) + shortcut(x))`.
///
/// The shortcut defaults to identity; a projection (1×1 convolution) can be
/// supplied when the body changes the channel count or spatial size. This is
/// the He et al. 2016 structure the paper relies on both for first-order
/// ResNet-32 and for its quadratic counterpart.
pub struct Residual {
    body: Sequential,
    shortcut: Option<Box<dyn Layer>>,
    final_relu: bool,
    relu_mask: Option<Tensor>,
}

impl Residual {
    /// Create a residual block with an identity shortcut.
    pub fn new(body: Sequential, final_relu: bool) -> Self {
        Residual { body, shortcut: None, final_relu, relu_mask: None }
    }

    /// Create a residual block with a projection shortcut.
    pub fn with_shortcut(body: Sequential, shortcut: Box<dyn Layer>, final_relu: bool) -> Self {
        Residual { body, shortcut: Some(shortcut), final_relu, relu_mask: None }
    }

    /// Immutable access to the residual body (for the auto-builder).
    pub fn body(&self) -> &Sequential {
        &self.body
    }

    /// Mutable access to the residual body (for the auto-builder).
    pub fn body_mut(&mut self) -> &mut Sequential {
        &mut self.body
    }
}

impl Layer for Residual {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        let branch = self.body.forward(x, train);
        let skip = match &mut self.shortcut {
            Some(s) => s.forward(x, train),
            None => x.clone(),
        };
        let mut out = branch.add(&skip).expect("residual shapes must match");
        if self.final_relu {
            let mask = out.map(|v| if v > 0.0 { 1.0 } else { 0.0 });
            out = out.relu();
            self.relu_mask = Some(mask);
        }
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let grad = if self.final_relu {
            let mask = self.relu_mask.take().expect("backward called before forward");
            grad_out.mul(&mask).expect("mask shape")
        } else {
            grad_out.clone()
        };
        let grad_body = self.body.backward(&grad);
        let grad_skip = match &mut self.shortcut {
            Some(s) => s.backward(&grad),
            None => grad,
        };
        grad_body.add(&grad_skip).expect("residual gradient shapes must match")
    }

    fn params(&self) -> Vec<&Param> {
        let mut p = self.body.params();
        if let Some(s) = &self.shortcut {
            p.extend(s.params());
        }
        p
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        let mut p = self.body.params_mut();
        if let Some(s) = &mut self.shortcut {
            p.extend(s.params_mut());
        }
        p
    }

    fn buffers(&self) -> Vec<(&'static str, &Tensor)> {
        let mut b = self.body.buffers();
        if let Some(s) = &self.shortcut {
            b.extend(s.buffers());
        }
        b
    }

    fn buffers_mut(&mut self) -> Vec<(&'static str, &mut Tensor)> {
        let mut b = self.body.buffers_mut();
        if let Some(s) = &mut self.shortcut {
            b.extend(s.buffers_mut());
        }
        b
    }

    fn cached_bytes(&self) -> usize {
        let mut b = self.body.cached_bytes() + self.relu_mask.as_ref().map(|m| m.nbytes()).unwrap_or(0);
        if let Some(s) = &self.shortcut {
            b += s.cached_bytes();
        }
        b
    }

    fn clear_cache(&mut self) {
        self.body.clear_cache();
        if let Some(s) = &mut self.shortcut {
            s.clear_cache();
        }
        self.relu_mask = None;
    }

    fn flops_last_forward(&self) -> usize {
        self.body.flops_last_forward() + self.shortcut.as_ref().map(|s| s.flops_last_forward()).unwrap_or(0)
    }

    fn set_memory_saving(&mut self, enabled: bool) {
        self.body.set_memory_saving(enabled);
        if let Some(s) = &mut self.shortcut {
            s.set_memory_saving(enabled);
        }
    }

    fn memory_saving(&self) -> bool {
        self.body.memory_saving() || self.shortcut.as_ref().map(|s| s.memory_saving()).unwrap_or(false)
    }

    fn layer_type(&self) -> &'static str {
        "residual"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activation::Relu;
    use crate::linear::Linear;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0)
    }

    #[test]
    fn sequential_forward_backward_chain() {
        let mut r = rng();
        let mut model = Sequential::new(vec![
            Box::new(Linear::new(3, 5, true, &mut r)),
            Box::new(Relu::new()),
            Box::new(Linear::new(5, 2, true, &mut r)),
        ]);
        let x = Tensor::randn(&[4, 3], 0.0, 1.0, &mut r);
        let y = model.forward(&x, true);
        assert_eq!(y.shape(), &[4, 2]);
        // Caches are populated by forward and consumed by backward.
        assert!(model.cached_bytes() > 0);
        let gin = model.backward(&Tensor::ones_like(&y));
        assert_eq!(gin.shape(), &[4, 3]);
        assert_eq!(model.params().len(), 4); // two weights, two biases
        assert!(model.param_count() > 0);
        let _ = model.forward(&x, true);
        model.clear_cache();
        assert_eq!(model.cached_bytes(), 0);
        assert!(model.describe().contains("linear"));
        assert_eq!(model.param_counts().len(), 3);
    }

    #[test]
    fn sequential_surgery() {
        let mut r = rng();
        let mut model = Sequential::empty();
        assert!(model.is_empty());
        model.push(Box::new(Linear::new(2, 2, false, &mut r)));
        model.push(Box::new(Relu::new()));
        assert_eq!(model.len(), 2);
        let old = model.replace(1, Box::new(Linear::new(2, 2, false, &mut r)));
        assert_eq!(old.layer_type(), "relu");
        let removed = model.remove(0);
        assert_eq!(removed.layer_type(), "linear");
        assert_eq!(model.len(), 1);
        assert_eq!(model.layers().len(), 1);
        assert_eq!(model.layers_mut().len(), 1);
    }

    #[test]
    fn identity_residual_adds_input() {
        let mut r = rng();
        // Body is a zero-initialised linear layer, so output == relu(x).
        let mut lin = Linear::new(3, 3, false, &mut r);
        for p in lin.params_mut() {
            p.value.fill(0.0);
        }
        let mut block = Residual::new(Sequential::new(vec![Box::new(lin)]), true);
        let x = Tensor::from_vec(vec![1.0, -2.0, 3.0], &[1, 3]).unwrap();
        let y = block.forward(&x, true);
        assert_eq!(y.as_slice(), &[1.0, 0.0, 3.0]);
        assert!(block.cached_bytes() > 0);
        let gin = block.backward(&Tensor::ones_like(&y));
        // Gradient flows through the identity path for positive outputs.
        assert_eq!(gin.shape(), &[1, 3]);
        assert_eq!(gin.as_slice()[0], 1.0);
        assert_eq!(gin.as_slice()[1], 0.0);
        let _ = block.forward(&x, true);
        block.clear_cache();
        assert_eq!(block.cached_bytes(), 0);
        assert_eq!(block.layer_type(), "residual");
        assert_eq!(block.body().len(), 1);
        assert_eq!(block.body_mut().len(), 1);
    }

    #[test]
    fn projection_shortcut_changes_width() {
        let mut r = rng();
        let body = Sequential::new(vec![Box::new(Linear::new(3, 4, false, &mut r))]);
        let shortcut = Box::new(Linear::new(3, 4, false, &mut r));
        let mut block = Residual::with_shortcut(body, shortcut, false);
        let x = Tensor::randn(&[2, 3], 0.0, 1.0, &mut r);
        let y = block.forward(&x, true);
        assert_eq!(y.shape(), &[2, 4]);
        let gin = block.backward(&Tensor::ones_like(&y));
        assert_eq!(gin.shape(), &[2, 3]);
        assert_eq!(block.params().len(), 2);
        assert!(block.flops_last_forward() > 0);
    }

    #[test]
    fn residual_gradient_sums_both_paths() {
        // With a zero body (gradient contributions only via weights) the input
        // gradient equals the output gradient exactly (identity path), doubled
        // if the body is also identity-like. Use a linear body initialised to
        // the identity matrix to verify summation.
        let mut r = rng();
        let mut lin = Linear::new(2, 2, false, &mut r);
        lin.params_mut()[0].value.copy_from(&Tensor::eye(2)).unwrap();
        let mut block = Residual::new(Sequential::new(vec![Box::new(lin)]), false);
        let x = Tensor::from_vec(vec![1.0, 2.0], &[1, 2]).unwrap();
        let y = block.forward(&x, true);
        assert_eq!(y.as_slice(), &[2.0, 4.0]);
        let gin = block.backward(&Tensor::ones_like(&y));
        assert_eq!(gin.as_slice(), &[2.0, 2.0]);
    }
}
