//! Request-lifecycle coverage: cancellation races (cancel while queued, mid
//! batch, after completion), deadline expiry shedding queued requests,
//! non-blocking handle polling, response provenance (batch id, tag), the
//! batch-class aging credit, and fair sharing across contending endpoints.

use quadra_nn::{Layer, Linear, Relu, Sequential};
use quadra_serve::{
    AdmissionPolicy, BatchPolicy, InferenceServer, Priority, Request, Router, ServeConfig, ServeError,
};
use quadra_tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::{Duration, Instant};

fn mlp(seed: u64) -> Sequential {
    let mut rng = StdRng::seed_from_u64(seed);
    Sequential::new(vec![
        Box::new(Linear::new(4, 8, true, &mut rng)),
        Box::new(Relu::new()),
        Box::new(Linear::new(8, 3, true, &mut rng)),
    ])
}

/// An identity layer slow enough that requests pile up behind it.
struct SleepIdentity(Duration);

impl Layer for SleepIdentity {
    fn forward(&mut self, x: &Tensor, _train: bool) -> Tensor {
        std::thread::sleep(self.0);
        x.clone()
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        grad_out.clone()
    }

    fn layer_type(&self) -> &'static str {
        "sleep_identity"
    }
}

/// An identity layer that *burns* CPU for a fixed duration — sleeps release
/// the core, so fair-sharing tests need real work.
struct BusyIdentity(Duration);

impl Layer for BusyIdentity {
    fn forward(&mut self, x: &Tensor, _train: bool) -> Tensor {
        let start = Instant::now();
        let mut acc = 0.0f64;
        while start.elapsed() < self.0 {
            for k in 0..256 {
                acc += (k as f64).sqrt();
            }
        }
        std::hint::black_box(acc);
        x.clone()
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        grad_out.clone()
    }

    fn layer_type(&self) -> &'static str {
        "busy_identity"
    }
}

fn sleep_server(service: Duration, batch_aging: u32) -> InferenceServer {
    InferenceServer::start(
        ServeConfig {
            workers: 1,
            policy: BatchPolicy {
                max_batch_size: 1,
                max_wait: Duration::from_millis(1),
                ..BatchPolicy::default()
            },
            admission: AdmissionPolicy { queue_capacity: None, batch_aging },
            ..ServeConfig::default()
        },
        move || Box::new(SleepIdentity(service)),
    )
    .unwrap()
}

#[test]
fn cancel_while_queued_sheds_with_cancelled() {
    let server = sleep_server(Duration::from_millis(40), 0);
    let client = server.client();
    // Occupy the single worker, then queue the victim behind it.
    let warmup = client.submit(Tensor::ones(&[1, 2])).unwrap();
    std::thread::sleep(Duration::from_millis(5));
    let victim = client.send(Request::new(Tensor::full(&[1, 2], 7.0))).unwrap();
    victim.cancel();
    assert_eq!(victim.wait().unwrap_err(), ServeError::Cancelled);
    let _ = warmup.wait().unwrap();
    let metrics = server.shutdown();
    assert_eq!(metrics.cancelled_requests, 1);
    assert_eq!(metrics.completed_requests, 1, "only the warmup was served");
}

#[test]
fn cancel_mid_batch_is_a_noop() {
    let server = sleep_server(Duration::from_millis(40), 0);
    let client = server.client();
    let handle = client.send(Request::new(Tensor::full(&[1, 2], 3.0))).unwrap();
    // The idle worker pulls the request immediately; by now it is mid
    // forward. Cancelling a dispatched request must not abort it.
    std::thread::sleep(Duration::from_millis(10));
    handle.cancel();
    let response = handle.wait().unwrap();
    assert_eq!(response.output.as_slice(), &[3.0, 3.0]);
    let metrics = server.shutdown();
    assert_eq!(metrics.cancelled_requests, 0, "a dispatched request is never counted as cancelled");
    assert_eq!(metrics.completed_requests, 1);
}

#[test]
fn cancel_after_completion_still_returns_the_response() {
    let server = sleep_server(Duration::from_millis(1), 0);
    let client = server.client();
    let first = client.send(Request::new(Tensor::full(&[1, 2], 5.0))).unwrap();
    // One worker, FIFO seeds: once this blocking request is answered, the
    // first one has completed too and its response sits in the channel.
    let _ = client.infer(Tensor::ones(&[1, 2])).unwrap();
    first.cancel();
    let response = first.wait().unwrap();
    assert_eq!(response.output.as_slice(), &[5.0, 5.0]);
    let metrics = server.shutdown();
    assert_eq!(metrics.cancelled_requests, 0);
}

#[test]
fn deadline_expiry_sheds_requests_already_queued() {
    let server = sleep_server(Duration::from_millis(40), 0);
    let client = server.client();
    // Occupy the worker for 40 ms, then queue a request that gives up after
    // 5 ms: by dispatch time it has expired and must be shed, not served.
    let warmup = client.submit(Tensor::ones(&[1, 2])).unwrap();
    std::thread::sleep(Duration::from_millis(5));
    let hopeless =
        client.send(Request::new(Tensor::ones(&[1, 2])).deadline(Duration::from_millis(5))).unwrap();
    // A generous deadline on a queued request is honoured normally.
    let patient =
        client.send(Request::new(Tensor::full(&[1, 2], 2.0)).deadline(Duration::from_secs(30))).unwrap();
    assert_eq!(hopeless.wait().unwrap_err(), ServeError::DeadlineExceeded);
    assert_eq!(patient.wait().unwrap().output.as_slice(), &[2.0, 2.0]);
    let _ = warmup.wait().unwrap();
    let metrics = server.shutdown();
    assert_eq!(metrics.deadline_missed_requests, 1);
    assert_eq!(metrics.completed_requests, 2);
}

#[test]
fn try_wait_polls_without_blocking_and_settles_once() {
    let server = sleep_server(Duration::from_millis(30), 0);
    let client = server.client();
    let mut handle = client.send(Request::new(Tensor::full(&[1, 2], 9.0))).unwrap();
    assert!(handle.try_wait().is_none(), "the request is still in flight");
    let deadline = Instant::now() + Duration::from_secs(10);
    let response = loop {
        if let Some(result) = handle.try_wait() {
            break result.unwrap();
        }
        assert!(Instant::now() < deadline, "response never arrived");
        std::thread::sleep(Duration::from_millis(2));
    };
    assert_eq!(response.output.as_slice(), &[9.0, 9.0]);
    let _ = server.shutdown();
}

#[test]
fn wait_timeout_leaves_the_handle_usable() {
    let server = sleep_server(Duration::from_millis(30), 0);
    let client = server.client();
    let mut handle = client.send(Request::new(Tensor::full(&[1, 2], 4.0))).unwrap();
    assert_eq!(handle.wait_timeout(Duration::from_millis(1)).unwrap_err(), ServeError::Timeout);
    // The timeout did not consume the request: a later bounded wait succeeds.
    let response = handle.wait_timeout(Duration::from_secs(10)).unwrap();
    assert_eq!(response.output.as_slice(), &[4.0, 4.0]);
    let _ = server.shutdown();
}

#[test]
fn responses_carry_batch_id_and_tag_provenance() {
    let server = InferenceServer::start(
        ServeConfig {
            workers: 1,
            policy: BatchPolicy {
                max_batch_size: 8,
                max_wait: Duration::from_millis(40),
                ..BatchPolicy::default()
            },
            ..ServeConfig::default()
        },
        || Box::new(SleepIdentity(Duration::from_millis(25))),
    )
    .unwrap();
    let client = server.client();
    // Occupy the worker with an oversized request (dispatched immediately,
    // no fill wait), then queue two requests that ride one batch.
    let warmup = client.send(Request::new(Tensor::ones(&[8, 2])).tag("warmup")).unwrap();
    std::thread::sleep(Duration::from_millis(5));
    let a = client.send(Request::new(Tensor::full(&[1, 2], 1.0)).tag("rider-a")).unwrap();
    let b = client.send(Request::new(Tensor::full(&[1, 2], 2.0))).unwrap();
    let warmup = warmup.wait().unwrap();
    let a = a.wait().unwrap();
    let b = b.wait().unwrap();
    assert_eq!(warmup.tag.as_deref(), Some("warmup"));
    assert_eq!(a.tag.as_deref(), Some("rider-a"));
    assert_eq!(b.tag, None);
    assert_ne!(warmup.batch_id, a.batch_id, "separate batches have distinct ids");
    if a.batch_samples == 2 {
        assert_eq!(a.batch_id, b.batch_id, "coalesced requests report the same batch id");
    }
    assert!(a.queue_wait <= a.latency, "queue wait is a component of latency");
    let _ = server.shutdown();
}

#[test]
fn tight_deadline_request_rides_the_earlier_batch() {
    // EDF slack ordering inside the admission queue: with a 2-slot batch, the
    // seed takes exactly one rider. FIFO fill would pick B (it arrived first);
    // EDF must pick C, whose deadline is tight, leaving B to the next batch.
    let server = InferenceServer::start(
        ServeConfig {
            workers: 1,
            policy: BatchPolicy {
                max_batch_size: 2,
                max_wait: Duration::from_millis(1),
                ..BatchPolicy::default()
            },
            ..ServeConfig::default()
        },
        || Box::new(SleepIdentity(Duration::from_millis(40))),
    )
    .unwrap();
    let client = server.client();
    // Occupy the single worker so the riders queue up behind it.
    let warmup = client.submit(Tensor::ones(&[1, 2])).unwrap();
    std::thread::sleep(Duration::from_millis(10));
    let a = client.send(Request::new(Tensor::full(&[1, 2], 1.0))).unwrap();
    let b = client.send(Request::new(Tensor::full(&[1, 2], 2.0))).unwrap();
    let c = client.send(Request::new(Tensor::full(&[1, 2], 3.0)).deadline(Duration::from_secs(10))).unwrap();
    let _ = warmup.wait().unwrap();
    let a = a.wait().unwrap();
    let b = b.wait().unwrap();
    let c = c.wait().unwrap();
    assert_eq!(c.batch_id, a.batch_id, "the deadlined request rides the seed's batch");
    assert!(b.batch_id > a.batch_id, "the undeadlined rider waits for the next batch");
    let _ = server.shutdown();
}

#[test]
fn batch_class_is_never_fully_starved_under_interactive_backlog() {
    // An unbounded interactive backlog with strict priority would serve the
    // batch class dead last. With the aging credit (every 3rd seed at most),
    // batch-class work is dispatched well before the interactive backlog
    // drains — visible deterministically through the monotone batch ids.
    let server = sleep_server(Duration::from_millis(2), 2);
    let client = server.client();
    let interactive: Vec<_> = (0..30)
        .map(|_| client.submit_with_priority(Tensor::ones(&[1, 2]), Priority::Interactive).unwrap())
        .collect();
    let aged: Vec<_> = (0..2)
        .map(|_| client.submit_with_priority(Tensor::ones(&[1, 2]), Priority::Batch).unwrap())
        .collect();
    let last_interactive_batch_id =
        interactive.into_iter().map(|p| p.wait().unwrap().batch_id).max().unwrap();
    for handle in aged {
        let response = handle.wait().unwrap();
        assert!(
            response.batch_id < last_interactive_batch_id,
            "batch-class request (batch {}) must be dispatched before the interactive backlog \
             drains (last interactive batch {})",
            response.batch_id,
            last_interactive_batch_id
        );
    }
    let metrics = server.shutdown();
    assert_eq!(metrics.completed_batch_class, 2);
}

#[test]
fn strict_priority_without_aging_drains_batch_class_last() {
    // The control for the aging test: batch_aging = 0 restores PR-4 strict
    // priority, so the queued batch-class requests get the highest batch ids.
    let server = sleep_server(Duration::from_millis(2), 0);
    let client = server.client();
    let warmup = client.submit(Tensor::ones(&[1, 2])).unwrap();
    std::thread::sleep(Duration::from_millis(1));
    let starved: Vec<_> = (0..2)
        .map(|_| client.submit_with_priority(Tensor::ones(&[1, 2]), Priority::Batch).unwrap())
        .collect();
    let interactive: Vec<_> = (0..20)
        .map(|_| client.submit_with_priority(Tensor::ones(&[1, 2]), Priority::Interactive).unwrap())
        .collect();
    let _ = warmup.wait().unwrap();
    let last_interactive_batch_id =
        interactive.into_iter().map(|p| p.wait().unwrap().batch_id).max().unwrap();
    for handle in starved {
        let response = handle.wait().unwrap();
        assert!(
            response.batch_id > last_interactive_batch_id,
            "under strict priority the batch class drains only after the interactive backlog"
        );
    }
    let _ = server.shutdown();
}

#[test]
fn fair_sharing_tracks_endpoint_weights_under_contention() {
    // Two CPU-burning endpoints, both saturated by closed-loop clients. The
    // DRR gate grants service time proportionally to the configured weights
    // even though the light model could push many more batches through: the
    // heavy endpoint (weight 3) must end up with roughly 3/4 of the fleet's
    // service time. Without the gate the split would drift towards whatever
    // the OS scheduler gives two competing threads (~1/2).
    let config = |weight: u32| ServeConfig {
        workers: 1,
        policy: BatchPolicy {
            max_batch_size: 1,
            max_wait: Duration::from_millis(1),
            ..BatchPolicy::default()
        },
        admission: AdmissionPolicy { queue_capacity: None, ..AdmissionPolicy::default() },
        weight,
    };
    let router = Router::builder()
        .endpoint("light", config(1), || Box::new(BusyIdentity(Duration::from_millis(1))))
        .endpoint("heavy", config(3), || Box::new(BusyIdentity(Duration::from_millis(3))))
        .start()
        .unwrap();

    let stop_at = Instant::now() + Duration::from_millis(600);
    let handles: Vec<_> = ["light", "heavy"]
        .into_iter()
        .flat_map(|model| (0..2).map(move |c| (model, c)))
        .map(|(model, _)| {
            let client = router.client();
            std::thread::spawn(move || {
                while Instant::now() < stop_at {
                    let _ = client.infer(model, Tensor::ones(&[1, 2])).unwrap();
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let metrics = router.shutdown();
    let heavy_share = metrics.service_share("heavy").expect("heavy served");
    let light_share = metrics.service_share("light").expect("light served");
    assert!(
        heavy_share > 0.60,
        "weight-3 endpoint must hold the bulk of the service time, got {heavy_share:.2}"
    );
    assert!(light_share > 0.05, "fair sharing must not starve the light endpoint, got {light_share:.2}");
    assert!(
        metrics.get("light").unwrap().completed_requests > 0
            && metrics.get("heavy").unwrap().completed_requests > 0
    );
}

#[test]
fn send_to_unknown_model_is_rejected() {
    let router = Router::builder()
        .endpoint("only", ServeConfig { workers: 1, ..ServeConfig::default() }, || Box::new(mlp(0)))
        .start()
        .unwrap();
    let err = router.client().send("missing", Request::new(Tensor::ones(&[1, 4]))).unwrap_err();
    assert_eq!(err, ServeError::UnknownModel("missing".to_string()));
    let _ = router.shutdown();
}
