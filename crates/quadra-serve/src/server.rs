//! The server front-end: spawns the batcher and worker threads, hands out
//! clients, publishes hot-reloads, and reports metrics.

use crate::batcher::{self, Batch};
use crate::metrics::{MetricsHub, ServeMetrics};
use crate::request::{BatcherMsg, InferResponse, PendingInfer, PendingResponse, ServeConfig, ServeError};
use crate::worker::{self, ModelFactory, ReloadSlot};
use quadra_nn::{Layer, StateDict};
use quadra_tensor::Tensor;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{self, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

/// A thread-based batched-inference server over any [`Layer`] model.
///
/// `start` builds one model replica per worker (each on its own dedicated
/// thread), plus a batcher thread that coalesces queued requests into batches
/// under the configured [`BatchPolicy`](crate::BatchPolicy). Requests are
/// submitted through cheap cloneable [`ServeClient`] handles; responses carry
/// the output rows for exactly the submitted samples together with latency
/// and batching telemetry.
///
/// Checkpoints produced by [`StateDict`] can be swapped in while the server
/// runs: [`InferenceServer::reload`] validates the state against a throwaway
/// replica, then workers atomically pick it up between batches. Responses
/// report the model version that produced them.
pub struct InferenceServer {
    req_tx: Sender<BatcherMsg>,
    next_id: Arc<AtomicU64>,
    reload: Arc<ReloadSlot>,
    metrics: Arc<MetricsHub>,
    factory: Arc<ModelFactory>,
    batcher: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl InferenceServer {
    /// Start a server. `factory` builds one model replica; it is called once
    /// per worker on the worker's own thread (plus once per [`reload`] for
    /// validation), so replicas never cross threads.
    ///
    /// [`reload`]: InferenceServer::reload
    pub fn start<F>(config: ServeConfig, factory: F) -> Result<InferenceServer, ServeError>
    where
        F: Fn() -> Box<dyn Layer> + Send + Sync + 'static,
    {
        if config.workers == 0 {
            return Err(ServeError::BadInput("need at least one worker".into()));
        }
        if config.policy.max_batch_size == 0 {
            return Err(ServeError::BadInput("max_batch_size must be at least 1".into()));
        }
        let factory: Arc<ModelFactory> = Arc::new(factory);
        let reload = Arc::new(ReloadSlot::new());
        let metrics = Arc::new(MetricsHub::new(config.policy.max_batch_size));

        let (req_tx, req_rx) = mpsc::channel::<BatcherMsg>();
        let (batch_tx, batch_rx) = mpsc::channel::<Batch>();
        let policy = config.policy;
        let batcher = std::thread::Builder::new()
            .name("quadra-serve-batcher".into())
            .spawn(move || batcher::run(req_rx, batch_tx, policy))
            .expect("spawn batcher thread");

        let batch_rx = Arc::new(Mutex::new(batch_rx));
        let mut workers = Vec::with_capacity(config.workers);
        for i in 0..config.workers {
            let rx = Arc::clone(&batch_rx);
            let factory = Arc::clone(&factory);
            let reload = Arc::clone(&reload);
            let metrics = Arc::clone(&metrics);
            let handle = std::thread::Builder::new()
                .name(format!("quadra-serve-worker-{}", i))
                .spawn(move || worker::run(rx, factory, reload, metrics))
                .expect("spawn worker thread");
            workers.push(handle);
        }

        Ok(InferenceServer {
            req_tx,
            next_id: Arc::new(AtomicU64::new(0)),
            reload,
            metrics,
            factory,
            batcher: Some(batcher),
            workers,
        })
    }

    /// A cheap cloneable handle for submitting requests. Clients stay valid
    /// until shutdown; submissions afterwards fail with
    /// [`ServeError::ShuttingDown`].
    pub fn client(&self) -> ServeClient {
        ServeClient { req_tx: self.req_tx.clone(), next_id: Arc::clone(&self.next_id) }
    }

    /// Swap in a new model state between batches.
    ///
    /// The checkpoint is validated against a freshly built replica first; an
    /// incompatible one is rejected without disturbing the serving state. On
    /// success the new version number is returned and every worker picks the
    /// state up before its next batch — requests never observe a half-loaded
    /// model.
    pub fn reload(&self, state: StateDict) -> Result<u64, ServeError> {
        let mut probe = (self.factory)();
        state.load_into(probe.as_mut()).map_err(ServeError::InvalidState)?;
        let version = self.reload.publish(state);
        self.metrics.record_reload();
        Ok(version)
    }

    /// The state version workers are currently serving from (0 until the
    /// first [`InferenceServer::reload`]).
    pub fn version(&self) -> u64 {
        self.reload.version()
    }

    /// A point-in-time snapshot of the serving statistics.
    pub fn metrics(&self) -> ServeMetrics {
        self.metrics.snapshot(self.reload.version())
    }

    /// Stop accepting requests, drain every in-flight request (each still
    /// receives its response), join all threads, and return the final
    /// metrics snapshot.
    pub fn shutdown(mut self) -> ServeMetrics {
        self.shutdown_inner();
        self.metrics.snapshot(self.reload.version())
    }

    fn shutdown_inner(&mut self) {
        let _ = self.req_tx.send(BatcherMsg::Shutdown);
        if let Some(handle) = self.batcher.take() {
            let _ = handle.join();
        }
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for InferenceServer {
    fn drop(&mut self) {
        if self.batcher.is_some() {
            self.shutdown_inner();
        }
    }
}

/// Client handle for submitting inference requests.
#[derive(Clone)]
pub struct ServeClient {
    req_tx: Sender<BatcherMsg>,
    next_id: Arc<AtomicU64>,
}

impl ServeClient {
    /// Enqueue `input` and return a handle to the pending response.
    ///
    /// Axis 0 of `input` is always the sample axis: submit `[n, features]`
    /// rows or `[n, C, H, W]` images (`n` may exceed the batch policy's
    /// `max_batch_size`, forming an oversized batch of its own). The
    /// response's output has the same leading axis.
    pub fn submit(&self, input: Tensor) -> Result<PendingResponse, ServeError> {
        if input.ndim() < 2 {
            return Err(ServeError::BadInput(format!(
                "input must have a leading sample axis (got {}-d; wrap a single sample as [1, ...])",
                input.ndim()
            )));
        }
        let samples = input.shape()[0];
        if samples == 0 {
            return Err(ServeError::BadInput("input holds zero samples".into()));
        }
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let (reply, rx) = mpsc::channel();
        let request = PendingInfer { id, samples, input, submitted_at: Instant::now(), reply };
        self.req_tx.send(BatcherMsg::Request(request)).map_err(|_| ServeError::ShuttingDown)?;
        Ok(PendingResponse { id, rx })
    }

    /// Submit and block until the response arrives.
    pub fn infer(&self, input: Tensor) -> Result<InferResponse, ServeError> {
        self.submit(input)?.wait()
    }

    /// Convenience for single samples: wraps a `[C, H, W]` (or `[features]`)
    /// tensor in a leading sample axis and blocks for the response, whose
    /// output then has shape `[1, ...]`.
    pub fn infer_one(&self, sample: &Tensor) -> Result<InferResponse, ServeError> {
        let mut shape = vec![1];
        shape.extend_from_slice(sample.shape());
        let input = sample.reshape(&shape).map_err(|e| ServeError::BadInput(e.to_string()))?;
        self.infer(input)
    }
}
