//! Table 3 — image-classification comparison on synth-CIFAR-10/100: first-order
//! baselines vs Fan et al. 2018 (T2&4), Bu & Karpatne 2021 (T4), QuadraNN
//! without the auto-builder, and the full QuadraNN, on VGG-16, ResNet-32 and
//! MobileNetV1 backbones.
//!
//! Regenerate with `cargo run -p quadra-bench --release --bin table3`
//! (set `QUADRA_SCALE=full` for larger runs).

use quadra_bench::{classification_row, print_table, run_classification, scale, RunSettings, Scale};
use quadra_core::{AutoBuilder, ModelConfig, NeuronType};
use quadra_data::ShapeImageDataset;
use quadra_models::{mobilenet_v1_config, resnet32_config, vgg16_config};

fn variants(cfg: &ModelConfig, reduced_target: usize) -> Vec<(String, ModelConfig)> {
    let fan = AutoBuilder::new(NeuronType::T2And4);
    let bu = AutoBuilder::new(NeuronType::T4);
    let ours = AutoBuilder::new(NeuronType::Ours);
    vec![
        ("First-order".to_string(), cfg.clone()),
        ("Fan'18 (T2&4)".to_string(), fan.build(cfg, reduced_target, &[])),
        ("Bu'21 (T4)".to_string(), bu.build(cfg, reduced_target, &[])),
        ("QuadraNN (no auto-builder)".to_string(), ours.convert(cfg)),
        ("QuadraNN".to_string(), ours.build(cfg, reduced_target, &[])),
    ]
}

fn main() {
    let (n_train, n_test, epochs, width, img) = match scale() {
        Scale::Full => (4000usize, 1000usize, 30usize, 0.25f32, 32usize),
        Scale::Quick => (400, 120, 5, 0.0625, 16),
    };
    let headers = [
        "Model",
        "#ConvLayers",
        "#Param",
        "Train t/batch",
        "Train mem",
        "Test t/batch",
        "Train acc",
        "Test acc",
    ];

    for (dataset_name, classes, seed) in [("synth-CIFAR-10", 10usize, 1u64), ("synth-CIFAR-100", 100, 11)] {
        let train = ShapeImageDataset::generate(n_train, classes, img, 3, 0.1, seed);
        let test = ShapeImageDataset::generate(n_test, classes, img, 3, 0.1, seed + 1);
        let backbones: Vec<(&str, ModelConfig, usize)> = vec![
            ("VGG-16", vgg16_config(width, classes, img), 7),
            ("ResNet-32", resnet32_config((16.0 * width).max(4.0) as usize, classes, img), 13),
            ("MobileNetV1", mobilenet_v1_config(13, width, 3, img, classes), 17),
        ];
        for (backbone, cfg, reduced) in backbones {
            let mut rows = Vec::new();
            for (name, vcfg) in variants(&cfg, reduced) {
                let result = run_classification(
                    &name,
                    &vcfg,
                    &train,
                    &test,
                    RunSettings { epochs, batch_size: 32, lr: 0.05, seed: 5 },
                );
                rows.push(classification_row(&result));
            }
            print_table(&format!("Table 3: {} on {}", backbone, dataset_name), &headers, &rows);
        }
    }
    println!("\nShape to reproduce: QuadraNN (auto-builder) reaches the best or matching accuracy");
    println!("with fewer conv layers than the first-order baseline, while QuadraNN without the");
    println!("auto-builder pays ~3-4x parameters/time/memory for little or no accuracy benefit.");
}
