//! # quadra-autograd
//!
//! A small, tape-based reverse-mode automatic-differentiation engine over
//! [`quadra_tensor::Tensor`], plus finite-difference gradient-checking
//! utilities used throughout the QuadraLib-rs test suite.
//!
//! In the paper's terminology this crate is the "Auto-Differentiation (AD)"
//! half of the hybrid back-propagation story: every intermediate value is
//! recorded on the tape and kept alive until `backward` runs, which is exactly
//! why QDNN training with default AD is memory-hungry (problem **P6**). The
//! quadratic layers in `quadra-core` instead use closed-form ("symbolic")
//! gradients and cache only what those formulas need; the memory profiler can
//! compare both, reproducing Fig. 8 of the paper.
//!
//! ## Example
//!
//! ```
//! use quadra_autograd::Graph;
//! use quadra_tensor::Tensor;
//!
//! let mut g = Graph::new();
//! let x = g.input(Tensor::from_slice(&[1.0, 2.0, 3.0]));
//! let w = g.input(Tensor::from_slice(&[0.5, 0.5, 0.5]));
//! let wx = g.mul(x, w);          // element-wise product
//! let loss = g.sum(wx);          // scalar loss
//! g.backward(loss);
//! assert_eq!(g.grad(x).unwrap().as_slice(), &[0.5, 0.5, 0.5]);
//! ```

#![warn(missing_docs)]

mod gradcheck;
mod graph;

pub use gradcheck::{check_close, numeric_gradient, GradCheckReport};
pub use graph::{Graph, Op, VarId};
