//! Integration smoke tests of the task-level pipelines the paper evaluates:
//! GAN generation metrics and detection mAP, through the public API.
//!
//! Each pipeline comes in a shrunk default size (same assertions, smaller
//! datasets / fewer epochs) and the original full-length version behind
//! `#[ignore]` for the non-blocking CI job.

use quadralib::core::NeuronType;
use quadralib::data::{DetectionDataset, ShapeImageDataset};
use quadralib::models::{Detector, DetectorConfig, FeatureExtractor, Gan, GanConfig, GenerationMetrics};

fn gan_pipeline(n_real: usize, fx_epochs: usize, gan_epochs: usize, n_fake: usize) {
    let real = ShapeImageDataset::generate(n_real, 3, 16, 3, 0.05, 1);
    let mut fx = FeatureExtractor::new(3, 3, 8, 2);
    fx.fit(&real.images, &real.labels, fx_epochs, 32, 3);

    for quadratic in [None, Some(NeuronType::Ours)] {
        let mut gan = Gan::new(GanConfig { base_width: 8, quadratic, seed: 4, ..GanConfig::default() });
        let report = gan.train(&real.images, gan_epochs, 16, 2e-3);
        assert!(report.d_losses.iter().chain(&report.g_losses).all(|l| l.is_finite()));
        let fake = gan.generate(n_fake);
        assert_eq!(fake.shape(), &[n_fake, 3, 16, 16]);
        let metrics = GenerationMetrics::evaluate(&mut fx, &real.images, &fake);
        assert!(metrics.inception_score >= 1.0 && metrics.inception_score.is_finite());
        assert!(metrics.fid >= 0.0 && metrics.fid.is_finite());
    }
}

#[test]
fn gan_pipeline_produces_metrics_and_quadratic_variant_runs() {
    gan_pipeline(48, 2, 3, 24);
}

#[test]
#[ignore = "full-length variant of gan_pipeline_produces_metrics_and_quadratic_variant_runs"]
fn gan_pipeline_produces_metrics_and_quadratic_variant_runs_full() {
    gan_pipeline(96, 3, 6, 48);
}

fn detection_pipeline(train_n: usize, test_n: usize, epochs: usize, donor_epochs: usize) {
    let train = DetectionDataset::generate(train_n, 3, 16, 1, 5);
    let test = DetectionDataset::generate(test_n, 3, 16, 1, 6);
    let cfg = DetectorConfig {
        num_classes: 3,
        image_size: 16,
        backbone_width: 4,
        grid: 4,
        quadratic: Some(NeuronType::Ours),
        seed: 7,
    };

    // Scratch training.
    let mut scratch = Detector::new(cfg);
    scratch.train(&train, epochs, 16, 0.05, 8);
    let scratch_map = scratch.evaluate_map(&test, 0.3).map;

    // "Pre-trained" backbone: reuse a backbone trained longer on the same task.
    let mut donor = Detector::new(DetectorConfig { seed: 9, ..cfg });
    donor.train(&train, donor_epochs, 16, 0.05, 10);
    let mut pretrained = Detector::new(cfg);
    pretrained.load_backbone_from(&donor);
    pretrained.train(&train, epochs, 16, 0.05, 11);
    let pretrained_map = pretrained.evaluate_map(&test, 0.3).map;

    assert!((0.0..=1.0).contains(&scratch_map));
    assert!((0.0..=1.0).contains(&pretrained_map));
    // Pre-training should not make things dramatically worse.
    assert!(pretrained_map >= scratch_map - 0.25, "scratch {} pretrained {}", scratch_map, pretrained_map);
}

#[test]
fn detection_pipeline_trains_and_pretraining_does_not_hurt() {
    detection_pipeline(32, 16, 3, 5);
}

#[test]
#[ignore = "full-length variant of detection_pipeline_trains_and_pretraining_does_not_hurt"]
fn detection_pipeline_trains_and_pretraining_does_not_hurt_full() {
    detection_pipeline(48, 24, 5, 8);
}
