//! Hot-path allocation lint.
//!
//! In designated per-request files (`hot_alloc_paths`), allocations that
//! grow or copy per request are findings:
//!
//! - **vec-new** — `Vec::new()` or an empty `vec![]`: every push doubles
//!   through the allocator; pre-size with `with_capacity` when the bound is
//!   known (batch size, member count);
//! - **format** — `format!(...)` allocates and formats on the request path;
//!   move the formatting to the cold path or suppress with a reason when the
//!   branch is demonstrably cold (an error reply);
//! - **payload-clone** — `.clone()` whose receiver chain contains a
//!   configured payload identifier (`request`, `input`, ...): request
//!   payloads carry tensors, so a clone is a deep copy — restructure to move
//!   ownership instead;
//! - **map-new** — `HashMap::new()` / `BTreeMap::new()`: per-request maps
//!   rehash/rebalance as they grow; pre-size with `with_capacity` or hoist
//!   the map out of the request loop;
//! - **string-new** — `String::new()`: a growing string on the request path;
//!   pre-size or borrow instead;
//! - **to-string** — `.to_string()` allocates and formats per call; prefer
//!   borrowing (`&str`), a precomputed `Arc<str>`, or suppress when the
//!   branch is demonstrably cold (an error reply).

use crate::config::AnalyzeConfig;
use crate::lexer::TokKind;
use crate::report::Finding;
use crate::source::SourceFile;

/// Run the pass over one file.
pub fn run(file: &SourceFile, cfg: &AnalyzeConfig, findings: &mut Vec<Finding>) {
    if !cfg.is_hot_alloc_path(&file.path) {
        return;
    }
    let toks = &file.toks;
    let mut last: Option<(u32, &'static str)> = None; // (line, check) dedup
    for i in 0..toks.len() {
        if file.is_test_tok(i) {
            continue;
        }
        let t = &toks[i];
        let mut emit = |check: &'static str, line: u32, message: String, findings: &mut Vec<Finding>| {
            if last == Some((line, check)) {
                return;
            }
            last = Some((line, check));
            findings.push(Finding {
                pass: "hot_alloc".to_string(),
                check: check.to_string(),
                file: file.path.clone(),
                line,
                message,
                snippet: file.line_text(line).to_string(),
                suppressed_reason: None,
            });
        };
        // `Vec::new()` — a growing vector on the request path.
        if t.is_ident("Vec")
            && i + 4 < toks.len()
            && toks[i + 1].is_punct(':')
            && toks[i + 2].is_punct(':')
            && toks[i + 3].is_ident("new")
            && toks[i + 4].is_punct('(')
        {
            emit(
                "vec-new",
                t.line,
                "`Vec::new()` in a per-request hot path grows through the allocator; pre-size with `with_capacity`".to_string(),
                findings,
            );
            continue;
        }
        // Empty `vec![]` — same growth pattern in macro clothing.
        if t.is_ident("vec")
            && i + 2 < toks.len()
            && toks[i + 1].is_punct('!')
            && toks[i + 2].is_punct('[')
            && i + 3 < toks.len()
            && toks[i + 3].is_punct(']')
        {
            emit(
                "vec-new",
                t.line,
                "empty `vec![]` in a per-request hot path grows through the allocator; pre-size with `with_capacity`".to_string(),
                findings,
            );
            continue;
        }
        // `HashMap::new()` / `BTreeMap::new()` — a growing map per request.
        if (t.is_ident("HashMap") || t.is_ident("BTreeMap"))
            && i + 4 < toks.len()
            && toks[i + 1].is_punct(':')
            && toks[i + 2].is_punct(':')
            && toks[i + 3].is_ident("new")
            && toks[i + 4].is_punct('(')
        {
            emit(
                "map-new",
                t.line,
                format!(
                    "`{}::new()` in a per-request hot path rehashes as it grows; pre-size with `with_capacity` or hoist it off the request path",
                    t.text
                ),
                findings,
            );
            continue;
        }
        // `String::new()` — a growing string per request.
        if t.is_ident("String")
            && i + 4 < toks.len()
            && toks[i + 1].is_punct(':')
            && toks[i + 2].is_punct(':')
            && toks[i + 3].is_ident("new")
            && toks[i + 4].is_punct('(')
        {
            emit(
                "string-new",
                t.line,
                "`String::new()` in a per-request hot path grows through the allocator; pre-size with `with_capacity` or borrow".to_string(),
                findings,
            );
            continue;
        }
        // `.to_string()` — allocation plus formatting machinery per call.
        if t.is_ident("to_string")
            && i > 0
            && toks[i - 1].is_punct('.')
            && i + 1 < toks.len()
            && toks[i + 1].is_punct('(')
        {
            emit(
                "to-string",
                t.line,
                "`.to_string()` allocates in a per-request hot path; borrow a `&str`, reuse a precomputed string, or justify the cold branch with a suppression".to_string(),
                findings,
            );
            continue;
        }
        // `format!` — allocation plus formatting machinery per request.
        if t.is_ident("format") && i + 1 < toks.len() && toks[i + 1].is_punct('!') {
            emit(
                "format",
                t.line,
                "`format!` allocates in a per-request hot path; precompute, borrow, or justify the cold branch with a suppression".to_string(),
                findings,
            );
            continue;
        }
        // `.clone()` of a request payload.
        if t.is_ident("clone")
            && i > 0
            && toks[i - 1].is_punct('.')
            && i + 1 < toks.len()
            && toks[i + 1].is_punct('(')
        {
            if let Some(chain) = payload_chain(file, i - 1, cfg) {
                emit(
                    "payload-clone",
                    t.line,
                    format!("`.clone()` of request payload `{chain}` deep-copies tensor data; restructure to move ownership"),
                    findings,
                );
                continue;
            }
        }
    }
}

/// The dotted receiver chain before `.clone()` when it names a configured
/// payload identifier; `None` otherwise.
fn payload_chain(file: &SourceFile, dot_idx: usize, cfg: &AnalyzeConfig) -> Option<String> {
    let toks = &file.toks;
    let mut chain: Vec<String> = Vec::new();
    let mut i = dot_idx;
    loop {
        if i == 0 {
            break;
        }
        let prev = &toks[i - 1];
        if prev.kind == TokKind::Ident {
            chain.push(prev.text.clone());
            if i >= 2 && toks[i - 2].is_punct('.') {
                i -= 2;
                continue;
            }
        }
        break;
    }
    if chain.iter().any(|seg| cfg.is_payload_ident(seg)) {
        chain.reverse();
        Some(chain.join("."))
    } else {
        None
    }
}
