//! Figure 5 — GPU memory cost of first-order CNNs vs a T2&4 QDNN of the same
//! structure at batch size 512, compared against common GPU capacities.
//!
//! Regenerate with `cargo run -p quadra-bench --release --bin fig5`.

use quadra_bench::print_table;
use quadra_core::{AutoBuilder, MemoryProfiler, NeuronType};
use quadra_models::{mobilenet_v1_config, resnet32_config, resnet_cifar_config, vgg16_config};

fn main() {
    let batch = 512usize;
    let profiler = MemoryProfiler::new();
    let gpus = [("GTX 1080 Ti", 11.0f64), ("TITAN X", 12.0), ("RTX 2080", 8.0)];

    // The paper's Fig. 5 evaluates VGG-16, ResNet-32 and ResNet-50; we use a
    // deeper/wider CIFAR-style ResNet as the ResNet-50 stand-in.
    let models = vec![
        ("VGG-16", vgg16_config(1.0, 10, 32)),
        ("ResNet-32", resnet32_config(16, 10, 32)),
        ("ResNet-50 (stand-in)", resnet_cifar_config([8, 8, 8], 32, 3, 32, 10)),
        ("MobileNetV1", mobilenet_v1_config(13, 1.0, 3, 32, 10)),
    ];
    let builder = AutoBuilder::new(NeuronType::T2And4); // Fan et al. 2018, as in the paper's figure

    let mut rows = Vec::new();
    for (name, cfg) in &models {
        let first = profiler.estimate_from_config(cfg, batch, true);
        let quad = profiler.estimate_from_config(&builder.convert(cfg), batch, true);
        rows.push(vec![
            name.to_string(),
            format!("{:.2} GiB", first.total_bytes() as f64 / f64::powi(1024.0, 3)),
            format!("{:.2} GiB", quad.total_bytes() as f64 / f64::powi(1024.0, 3)),
            format!("{:.2}x", quad.total_bytes() as f64 / first.total_bytes() as f64),
        ]);
    }
    print_table(
        &format!("Figure 5: modelled training memory at batch {} (first-order vs T2&4 QDNN)", batch),
        &["Structure", "First-order CNN", "QDNN (T2&4)", "Ratio"],
        &rows,
    );
    println!("\nGPU capacities for reference:");
    for (gpu, gib) in gpus {
        println!("  {:<14} {:.0} GiB", gpu, gib);
    }
    println!("\nShape to reproduce from the paper: the first-order models fit comfortably under");
    println!("common GPU capacities while the same structures with T2&4 quadratic layers need");
    println!("substantially more memory and can exceed an 8-11 GiB budget.");
}
