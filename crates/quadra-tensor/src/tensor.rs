//! The core dense [`Tensor`] type: construction, element access and simple maps.

use crate::error::{Result, TensorError};
use crate::shape::{numel, offset_of, strides_for};

/// A dense, contiguous, row-major `f32` tensor of arbitrary rank.
///
/// `Tensor` is the only storage type in QuadraLib-rs: layers, optimizers,
/// datasets and the quadratic-neuron implementations all exchange values
/// through it. Operations that change layout (reshape, permute, slicing,
/// concatenation) materialise a new contiguous tensor, which keeps the
/// implementation simple and predictable at the cost of some copies — an
/// acceptable trade-off for the CPU-scale experiments this library targets.
#[derive(Clone, PartialEq)]
pub struct Tensor {
    data: Vec<f32>,
    shape: Vec<usize>,
}

impl std::fmt::Debug for Tensor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Tensor(shape={:?}", self.shape)?;
        if self.data.len() <= 16 {
            write!(f, ", data={:?})", self.data)
        } else {
            write!(f, ", data=[{:.4}, {:.4}, ... {} elements])", self.data[0], self.data[1], self.data.len())
        }
    }
}

impl Tensor {
    // ------------------------------------------------------------------
    // Constructors
    // ------------------------------------------------------------------

    /// Create a tensor from a flat `Vec<f32>` and a shape.
    ///
    /// Returns [`TensorError::ShapeDataMismatch`] if the element count does
    /// not match the shape.
    pub fn from_vec(data: Vec<f32>, shape: &[usize]) -> Result<Self> {
        if numel(shape) != data.len() {
            return Err(TensorError::ShapeDataMismatch { shape: shape.to_vec(), data_len: data.len() });
        }
        Ok(Tensor { data, shape: shape.to_vec() })
    }

    /// Create a rank-0 (scalar) tensor.
    pub fn scalar(value: f32) -> Self {
        Tensor { data: vec![value], shape: vec![] }
    }

    /// Create a rank-1 tensor from a slice.
    pub fn from_slice(data: &[f32]) -> Self {
        Tensor { data: data.to_vec(), shape: vec![data.len()] }
    }

    /// A tensor of the given shape filled with `value`.
    pub fn full(shape: &[usize], value: f32) -> Self {
        Tensor { data: vec![value; numel(shape)], shape: shape.to_vec() }
    }

    /// A tensor of zeros.
    pub fn zeros(shape: &[usize]) -> Self {
        Self::full(shape, 0.0)
    }

    /// A tensor of ones.
    pub fn ones(shape: &[usize]) -> Self {
        Self::full(shape, 1.0)
    }

    /// A tensor of zeros with the same shape as `other`.
    pub fn zeros_like(other: &Tensor) -> Self {
        Self::zeros(other.shape())
    }

    /// A tensor of ones with the same shape as `other`.
    pub fn ones_like(other: &Tensor) -> Self {
        Self::ones(other.shape())
    }

    /// The `n`×`n` identity matrix.
    pub fn eye(n: usize) -> Self {
        let mut t = Self::zeros(&[n, n]);
        for i in 0..n {
            t.data[i * n + i] = 1.0;
        }
        t
    }

    /// Evenly spaced values `[start, start+step, ...)` of length `len` as a rank-1 tensor.
    pub fn arange(start: f32, step: f32, len: usize) -> Self {
        let data = (0..len).map(|i| start + step * i as f32).collect();
        Tensor { data, shape: vec![len] }
    }

    /// `len` evenly spaced values from `start` to `end` inclusive.
    pub fn linspace(start: f32, end: f32, len: usize) -> Self {
        if len <= 1 {
            return Tensor { data: vec![start; len], shape: vec![len] };
        }
        let step = (end - start) / (len - 1) as f32;
        Self::arange(start, step, len)
    }

    // ------------------------------------------------------------------
    // Accessors
    // ------------------------------------------------------------------

    /// The shape of the tensor.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Number of axes (rank) of the tensor.
    pub fn ndim(&self) -> usize {
        self.shape.len()
    }

    /// Total number of elements.
    pub fn numel(&self) -> usize {
        self.data.len()
    }

    /// Size in bytes of the underlying storage (4 bytes per element).
    pub fn nbytes(&self) -> usize {
        self.data.len() * std::mem::size_of::<f32>()
    }

    /// The extent of axis `axis`.
    pub fn size(&self, axis: usize) -> usize {
        self.shape[axis]
    }

    /// Borrow the underlying storage as a flat slice (row-major order).
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutably borrow the underlying storage.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consume the tensor, returning its flat storage.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Row-major strides of the tensor.
    pub fn strides(&self) -> Vec<usize> {
        strides_for(&self.shape)
    }

    /// Read the element at multi-dimensional index `idx`.
    ///
    /// # Panics
    /// Panics if `idx` has the wrong rank or is out of bounds.
    pub fn at(&self, idx: &[usize]) -> f32 {
        assert_eq!(idx.len(), self.ndim(), "index rank mismatch");
        for (i, (&c, &s)) in idx.iter().zip(self.shape.iter()).enumerate() {
            assert!(c < s, "index {} out of bounds for axis {} with size {}", c, i, s);
        }
        self.data[offset_of(idx, &self.strides())]
    }

    /// Write the element at multi-dimensional index `idx`.
    ///
    /// # Panics
    /// Panics if `idx` has the wrong rank or is out of bounds.
    pub fn set(&mut self, idx: &[usize], value: f32) {
        assert_eq!(idx.len(), self.ndim(), "index rank mismatch");
        let off = offset_of(idx, &self.strides());
        self.data[off] = value;
    }

    /// The single value of a scalar (rank-0 or one-element) tensor.
    ///
    /// # Panics
    /// Panics if the tensor has more than one element.
    pub fn item(&self) -> f32 {
        assert_eq!(self.data.len(), 1, "item() requires a single-element tensor, shape {:?}", self.shape);
        self.data[0]
    }

    // ------------------------------------------------------------------
    // Maps
    // ------------------------------------------------------------------

    /// Apply `f` element-wise, producing a new tensor of the same shape.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        Tensor { data: self.data.iter().map(|&x| f(x)).collect(), shape: self.shape.clone() }
    }

    /// Apply `f` element-wise in place.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        for x in self.data.iter_mut() {
            *x = f(*x);
        }
    }

    /// Combine two tensors of identical shape element-wise with `f`.
    ///
    /// For broadcasting semantics use the arithmetic ops in the crate instead.
    pub fn zip_map(&self, other: &Tensor, f: impl Fn(f32, f32) -> f32) -> Result<Tensor> {
        if self.shape != other.shape {
            return Err(TensorError::IncompatibleShapes {
                op: "zip_map",
                lhs: self.shape.clone(),
                rhs: other.shape.clone(),
            });
        }
        let data = self.data.iter().zip(other.data.iter()).map(|(&a, &b)| f(a, b)).collect();
        Ok(Tensor { data, shape: self.shape.clone() })
    }

    /// Fill the tensor with `value` in place.
    pub fn fill(&mut self, value: f32) {
        for x in self.data.iter_mut() {
            *x = value;
        }
    }

    /// Copy values from `other` (same shape) into `self`.
    pub fn copy_from(&mut self, other: &Tensor) -> Result<()> {
        if self.shape != other.shape {
            return Err(TensorError::IncompatibleShapes {
                op: "copy_from",
                lhs: self.shape.clone(),
                rhs: other.shape.clone(),
            });
        }
        self.data.copy_from_slice(&other.data);
        Ok(())
    }

    /// True if any element is NaN or infinite.
    pub fn has_non_finite(&self) -> bool {
        self.data.iter().any(|x| !x.is_finite())
    }

    /// Maximum absolute difference to another tensor of the same shape.
    pub fn max_abs_diff(&self, other: &Tensor) -> Result<f32> {
        if self.shape != other.shape {
            return Err(TensorError::IncompatibleShapes {
                op: "max_abs_diff",
                lhs: self.shape.clone(),
                rhs: other.shape.clone(),
            });
        }
        Ok(self.data.iter().zip(other.data.iter()).map(|(a, b)| (a - b).abs()).fold(0.0f32, f32::max))
    }

    /// True if all elements are within `tol` of the corresponding element of `other`.
    pub fn allclose(&self, other: &Tensor, tol: f32) -> bool {
        self.shape == other.shape && self.max_abs_diff(other).map(|d| d <= tol).unwrap_or(false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_vec_checks_len() {
        assert!(Tensor::from_vec(vec![1.0, 2.0], &[3]).is_err());
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]).unwrap();
        assert_eq!(t.shape(), &[2, 3]);
        assert_eq!(t.numel(), 6);
        assert_eq!(t.ndim(), 2);
        assert_eq!(t.nbytes(), 24);
    }

    #[test]
    fn constructors() {
        assert_eq!(Tensor::zeros(&[2, 2]).as_slice(), &[0.0; 4]);
        assert_eq!(Tensor::ones(&[3]).as_slice(), &[1.0; 3]);
        assert_eq!(Tensor::full(&[2], 7.5).as_slice(), &[7.5, 7.5]);
        assert_eq!(Tensor::scalar(3.0).item(), 3.0);
        let e = Tensor::eye(3);
        assert_eq!(e.at(&[0, 0]), 1.0);
        assert_eq!(e.at(&[1, 0]), 0.0);
        assert_eq!(e.at(&[2, 2]), 1.0);
        let a = Tensor::arange(0.0, 0.5, 4);
        assert_eq!(a.as_slice(), &[0.0, 0.5, 1.0, 1.5]);
        let l = Tensor::linspace(0.0, 1.0, 5);
        assert_eq!(l.as_slice(), &[0.0, 0.25, 0.5, 0.75, 1.0]);
        let z = Tensor::zeros_like(&a);
        assert_eq!(z.shape(), a.shape());
        let o = Tensor::ones_like(&a);
        assert_eq!(o.as_slice(), &[1.0; 4]);
    }

    #[test]
    fn indexing_get_set() {
        let mut t = Tensor::zeros(&[2, 3]);
        t.set(&[1, 2], 5.0);
        assert_eq!(t.at(&[1, 2]), 5.0);
        assert_eq!(t.at(&[0, 0]), 0.0);
        assert_eq!(t.strides(), vec![3, 1]);
    }

    #[test]
    #[should_panic]
    fn out_of_bounds_panics() {
        let t = Tensor::zeros(&[2, 2]);
        let _ = t.at(&[2, 0]);
    }

    #[test]
    fn map_and_zip_map() {
        let a = Tensor::from_slice(&[1.0, -2.0, 3.0]);
        let b = a.map(|x| x.abs());
        assert_eq!(b.as_slice(), &[1.0, 2.0, 3.0]);
        let c = a.zip_map(&b, |x, y| x + y).unwrap();
        assert_eq!(c.as_slice(), &[2.0, 0.0, 6.0]);
        assert!(a.zip_map(&Tensor::zeros(&[2]), |x, _| x).is_err());
        let mut d = a.clone();
        d.map_inplace(|x| x * 2.0);
        assert_eq!(d.as_slice(), &[2.0, -4.0, 6.0]);
    }

    #[test]
    fn fill_copy_close() {
        let mut t = Tensor::zeros(&[4]);
        t.fill(2.0);
        assert_eq!(t.as_slice(), &[2.0; 4]);
        let mut u = Tensor::zeros(&[4]);
        u.copy_from(&t).unwrap();
        assert!(u.allclose(&t, 0.0));
        assert!(u.copy_from(&Tensor::zeros(&[3])).is_err());
        assert_eq!(t.max_abs_diff(&Tensor::zeros(&[4])).unwrap(), 2.0);
        assert!(!t.allclose(&Tensor::zeros(&[4]), 1.0));
        assert!(t.allclose(&Tensor::full(&[4], 2.0000001), 1e-5));
    }

    #[test]
    fn non_finite_detection() {
        let t = Tensor::from_slice(&[1.0, f32::NAN]);
        assert!(t.has_non_finite());
        let t = Tensor::from_slice(&[1.0, f32::INFINITY]);
        assert!(t.has_non_finite());
        let t = Tensor::from_slice(&[1.0, 2.0]);
        assert!(!t.has_non_finite());
    }

    #[test]
    fn debug_format_is_compact_for_large_tensors() {
        let t = Tensor::zeros(&[100]);
        let s = format!("{:?}", t);
        assert!(s.contains("100 elements"));
        let t = Tensor::zeros(&[2]);
        assert!(format!("{:?}", t).contains("data"));
    }

    #[test]
    fn scalar_rank_zero() {
        let s = Tensor::scalar(1.5);
        assert_eq!(s.ndim(), 0);
        assert_eq!(s.numel(), 1);
        assert_eq!(s.item(), 1.5);
    }
}
