//! The quadratic-neuron taxonomy of the paper (Table 1).
//!
//! Every QDNN design published before QuadraLib introduces the second-order
//! term of the input `X` in one of a few ways; the paper groups them into four
//! base types plus two hybrids, and proposes a new format ("Ours"):
//!
//! | Type | Neuron format | Complexity (time) | Complexity (params) |
//! |------|---------------|-------------------|---------------------|
//! | T1   | `Xᵀ·Wa·X (+ Wb·X)`            | O(n²) (+n)   | O(n²) (+n) |
//! | T2   | `Wa·X²`                        | O(2n)        | O(n)       |
//! | T3   | `(Wa·X)²`                      | O(2n)        | O(n)       |
//! | T4   | `(Wa·X) ∘ (Wb·X)`              | O(3n)        | O(2n)      |
//! | T1&2 | `Xᵀ·Wa·X + Wb·X²`              | O(n²+2n)     | O(n²+n)    |
//! | T2&4 | `(Wa·X) ∘ (Wb·X) + Wc·X²`      | O(5n)        | O(3n)      |
//! | T4+Id| `(Wa·X) ∘ (Wb·X) + X`          | O(3n)        | O(2n)      |
//! | Ours | `(Wa·X) ∘ (Wb·X) + Wc·X`       | O(4n)        | O(3n)      |
//!
//! [`NeuronType`] carries these closed-form complexity counts; the
//! [`DenseQuadraticNeuron`] struct instantiates a single scalar-output neuron
//! of any type so that unit and property tests can verify both the arithmetic
//! and the complexity formulas against real parameter tensors.

use quadra_tensor::Tensor;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// The quadratic neuron design taxonomy of Table 1 in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NeuronType {
    /// `f(X) = Xᵀ·Wa·X + Wb·X` — full-rank bilinear form (Cheung & Leung 1991).
    T1,
    /// `f(X) = Wa·X²` — squared inputs (Goyal et al. 2020).
    T2,
    /// `f(X) = (Wa·X)²` — squared first-order neuron (DeClaris & Su 1991).
    T3,
    /// `f(X) = (Wa·X) ∘ (Wb·X)` — Hadamard product of two first-order neurons
    /// (Bu & Karpatne 2021).
    T4,
    /// `f(X) = Xᵀ·Wa·X + Wb·X²` — hybrid of T1 and T2 (Milenkovic et al. 1996).
    T1And2,
    /// `f(X) = (Wa·X) ∘ (Wb·X) + Wc·X²` — hybrid of T2 and T4 (Fan et al. 2018).
    T2And4,
    /// `f(X) = (Wa·X) ∘ (Wb·X) + X` — T4 plus an identity mapping, the
    /// strongest baseline evaluated in Table 2.
    T4Identity,
    /// `f(X) = (Wa·X) ∘ (Wb·X) + Wc·X` — the neuron proposed by the paper.
    Ours,
}

impl NeuronType {
    /// All neuron types, in Table 1 order.
    pub const ALL: [NeuronType; 8] = [
        NeuronType::T1,
        NeuronType::T2,
        NeuronType::T3,
        NeuronType::T4,
        NeuronType::T1And2,
        NeuronType::T2And4,
        NeuronType::T4Identity,
        NeuronType::Ours,
    ];

    /// Display name matching the paper's nomenclature.
    pub fn name(&self) -> &'static str {
        match self {
            NeuronType::T1 => "T1",
            NeuronType::T2 => "T2",
            NeuronType::T3 => "T3",
            NeuronType::T4 => "T4",
            NeuronType::T1And2 => "T1&2",
            NeuronType::T2And4 => "T2&4",
            NeuronType::T4Identity => "T4+Identity",
            NeuronType::Ours => "Ours (QuadraNN)",
        }
    }

    /// The literature reference the paper associates with the design.
    pub fn reference(&self) -> &'static str {
        match self {
            NeuronType::T1 => "Cheung & Leung 1991; Zoumpourlis 2017; Jiang 2019; Mantini & Shah 2021",
            NeuronType::T2 => "Goyal et al. 2020",
            NeuronType::T3 => "DeClaris & Su 1991",
            NeuronType::T4 => "Bu & Karpatne 2021",
            NeuronType::T1And2 => "Milenkovic et al. 1996",
            NeuronType::T2And4 => "Fan et al. 2018",
            NeuronType::T4Identity => "T4 with identity mapping (ablation baseline)",
            NeuronType::Ours => "This work (QuadraLib)",
        }
    }

    /// Neuron formula as printed in Table 1.
    pub fn formula(&self) -> &'static str {
        match self {
            NeuronType::T1 => "f(X) = X^T Wa X + Wb X",
            NeuronType::T2 => "f(X) = Wa X^2",
            NeuronType::T3 => "f(X) = (Wa X)^2",
            NeuronType::T4 => "f(X) = (Wa X) ∘ (Wb X)",
            NeuronType::T1And2 => "f(X) = X^T Wa X + Wb X^2",
            NeuronType::T2And4 => "f(X) = (Wa X) ∘ (Wb X) + Wc X^2",
            NeuronType::T4Identity => "f(X) = (Wa X) ∘ (Wb X) + X",
            NeuronType::Ours => "f(X) = (Wa X) ∘ (Wb X) + Wc X",
        }
    }

    /// Number of trainable parameters of a single neuron with input size `n`
    /// (bias ignored, as in Table 1's "Model Structure" column).
    pub fn param_count(&self, n: usize) -> usize {
        match self {
            NeuronType::T1 => n * n + n,
            NeuronType::T2 => n,
            NeuronType::T3 => n,
            NeuronType::T4 => 2 * n,
            NeuronType::T1And2 => n * n + n,
            NeuronType::T2And4 => 3 * n,
            NeuronType::T4Identity => 2 * n,
            NeuronType::Ours => 3 * n,
        }
    }

    /// Multiply–accumulate count of a single neuron evaluation with input size
    /// `n` (Table 1's "Computation Complexity" column).
    pub fn flop_count(&self, n: usize) -> usize {
        match self {
            NeuronType::T1 => n * n + n,
            NeuronType::T2 => 2 * n,
            NeuronType::T3 => 2 * n,
            NeuronType::T4 => 3 * n,
            NeuronType::T1And2 => n * n + 2 * n,
            NeuronType::T2And4 => 5 * n,
            NeuronType::T4Identity => 3 * n,
            NeuronType::Ours => 4 * n,
        }
    }

    /// True for designs whose second-order term adds *no* extra trainable
    /// parameters over a first-order neuron — the approximation-capability
    /// problem **P1** identified by the paper.
    pub fn has_approximation_issue(&self) -> bool {
        matches!(self, NeuronType::T2 | NeuronType::T3)
    }

    /// True for designs whose per-neuron cost grows quadratically in the input
    /// size — the computation-complexity problem **P2**.
    pub fn has_complexity_issue(&self) -> bool {
        matches!(self, NeuronType::T1 | NeuronType::T1And2)
    }

    /// True for designs with no first-order (or identity) escape path in the
    /// gradient, i.e. subject to the vanishing-gradient problem **P3** in deep
    /// plain networks.
    pub fn has_gradient_vanishing_issue(&self) -> bool {
        !matches!(self, NeuronType::T4Identity | NeuronType::Ours)
    }

    /// True if the neuron can be assembled purely from first-order building
    /// blocks already offered by DNN libraries (problem **P4** otherwise).
    pub fn is_library_friendly(&self) -> bool {
        !matches!(self, NeuronType::T1 | NeuronType::T1And2)
    }
}

impl std::fmt::Display for NeuronType {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.name())
    }
}

/// A single scalar-output quadratic neuron over a length-`n` input vector.
///
/// This is the object the paper's Table 1 reasons about; the layer
/// implementations in [`QuadraticLinear`](crate::QuadraticLinear) and
/// [`QuadraticConv2d`](crate::QuadraticConv2d) generalise it to whole layers.
/// It is used by tests and by the Table 1 benchmark harness to validate the
/// closed-form complexity counts against concrete tensors.
#[derive(Debug, Clone)]
pub struct DenseQuadraticNeuron {
    neuron_type: NeuronType,
    /// Full-rank matrix for T1-style designs (`[n, n]`), otherwise unused.
    w_full: Option<Tensor>,
    /// First weight vector (`[n]`).
    wa: Option<Tensor>,
    /// Second weight vector (`[n]`).
    wb: Option<Tensor>,
    /// Third weight vector (`[n]`).
    wc: Option<Tensor>,
    bias: f32,
}

impl DenseQuadraticNeuron {
    /// Create a neuron of the given type for input size `n` with random weights.
    pub fn new(neuron_type: NeuronType, n: usize, rng: &mut impl Rng) -> Self {
        fn vec<R: Rng>(n: usize, rng: &mut R) -> Tensor {
            Tensor::randn(&[n], 0.0, (1.0 / n as f32).sqrt(), rng)
        }
        fn mat<R: Rng>(n: usize, rng: &mut R) -> Tensor {
            Tensor::randn(&[n, n], 0.0, 1.0 / n as f32, rng)
        }
        let (w_full, wa, wb, wc) = match neuron_type {
            NeuronType::T1 => (Some(mat(n, rng)), Some(vec(n, rng)), None, None),
            NeuronType::T2 | NeuronType::T3 => (None, Some(vec(n, rng)), None, None),
            NeuronType::T4 | NeuronType::T4Identity => (None, Some(vec(n, rng)), Some(vec(n, rng)), None),
            NeuronType::T1And2 => (Some(mat(n, rng)), None, Some(vec(n, rng)), None),
            NeuronType::T2And4 | NeuronType::Ours => {
                (None, Some(vec(n, rng)), Some(vec(n, rng)), Some(vec(n, rng)))
            }
        };
        DenseQuadraticNeuron { neuron_type, w_full, wa, wb, wc, bias: 0.0 }
    }

    /// The neuron's design type.
    pub fn neuron_type(&self) -> NeuronType {
        self.neuron_type
    }

    /// Total number of trainable scalars actually held by this instance
    /// (matches [`NeuronType::param_count`] by construction).
    pub fn param_count(&self) -> usize {
        self.w_full.as_ref().map(|t| t.numel()).unwrap_or(0)
            + self.wa.as_ref().map(|t| t.numel()).unwrap_or(0)
            + self.wb.as_ref().map(|t| t.numel()).unwrap_or(0)
            + self.wc.as_ref().map(|t| t.numel()).unwrap_or(0)
    }

    /// Evaluate the neuron on an input vector `x` of length `n`.
    ///
    /// # Panics
    /// Panics if `x` does not match the neuron's input size.
    pub fn forward(&self, x: &Tensor) -> f32 {
        assert_eq!(x.ndim(), 1, "DenseQuadraticNeuron expects a vector input");
        let dot = |w: &Tensor, v: &Tensor| w.dot(v).expect("matching lengths");
        let quad_form = |m: &Tensor, v: &Tensor| {
            // xᵀ M x
            m.matvec(v).expect("shape").dot(v).expect("shape")
        };
        let value = match self.neuron_type {
            NeuronType::T1 => quad_form(self.w_full.as_ref().unwrap(), x) + dot(self.wa.as_ref().unwrap(), x),
            NeuronType::T2 => dot(self.wa.as_ref().unwrap(), &x.square()),
            NeuronType::T3 => {
                let s = dot(self.wa.as_ref().unwrap(), x);
                s * s
            }
            NeuronType::T4 => dot(self.wa.as_ref().unwrap(), x) * dot(self.wb.as_ref().unwrap(), x),
            NeuronType::T1And2 => {
                quad_form(self.w_full.as_ref().unwrap(), x) + dot(self.wb.as_ref().unwrap(), &x.square())
            }
            NeuronType::T2And4 => {
                dot(self.wa.as_ref().unwrap(), x) * dot(self.wb.as_ref().unwrap(), x)
                    + dot(self.wc.as_ref().unwrap(), &x.square())
            }
            NeuronType::T4Identity => {
                dot(self.wa.as_ref().unwrap(), x) * dot(self.wb.as_ref().unwrap(), x) + x.sum()
            }
            NeuronType::Ours => {
                dot(self.wa.as_ref().unwrap(), x) * dot(self.wb.as_ref().unwrap(), x)
                    + dot(self.wc.as_ref().unwrap(), x)
            }
        };
        value + self.bias
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(21)
    }

    #[test]
    fn complexity_table_matches_paper_orders() {
        let n = 16;
        assert_eq!(NeuronType::T1.param_count(n), n * n + n);
        assert_eq!(NeuronType::T2.param_count(n), n);
        assert_eq!(NeuronType::T3.param_count(n), n);
        assert_eq!(NeuronType::T4.param_count(n), 2 * n);
        assert_eq!(NeuronType::T1And2.param_count(n), n * n + n);
        assert_eq!(NeuronType::T2And4.param_count(n), 3 * n);
        assert_eq!(NeuronType::Ours.param_count(n), 3 * n);
        assert_eq!(NeuronType::T2.flop_count(n), 2 * n);
        assert_eq!(NeuronType::T4.flop_count(n), 3 * n);
        assert_eq!(NeuronType::T2And4.flop_count(n), 5 * n);
        assert_eq!(NeuronType::Ours.flop_count(n), 4 * n);
        assert_eq!(NeuronType::T1.flop_count(n), n * n + n);
    }

    #[test]
    fn issue_flags_follow_table_1() {
        use NeuronType::*;
        // P1: approximation capability
        assert!(T2.has_approximation_issue() && T3.has_approximation_issue());
        assert!(!T4.has_approximation_issue() && !Ours.has_approximation_issue());
        // P2: quadratic cost
        assert!(T1.has_complexity_issue() && T1And2.has_complexity_issue());
        assert!(!Ours.has_complexity_issue());
        // P3: gradient vanishing — solved only by identity/linear escape path
        assert!(T2.has_gradient_vanishing_issue());
        assert!(T4.has_gradient_vanishing_issue());
        assert!(!T4Identity.has_gradient_vanishing_issue());
        assert!(!Ours.has_gradient_vanishing_issue());
        // P4: implementation feasibility
        assert!(!T1.is_library_friendly());
        assert!(Ours.is_library_friendly());
    }

    #[test]
    fn names_formulas_references_are_nonempty_and_unique() {
        let mut names = std::collections::HashSet::new();
        for t in NeuronType::ALL {
            assert!(!t.name().is_empty());
            assert!(!t.formula().is_empty());
            assert!(!t.reference().is_empty());
            assert!(names.insert(t.name()), "duplicate name {}", t.name());
            assert_eq!(format!("{}", t), t.name());
        }
        assert_eq!(names.len(), 8);
    }

    #[test]
    fn dense_neuron_param_counts_match_closed_form() {
        let n = 12;
        let mut r = rng();
        for t in NeuronType::ALL {
            let neuron = DenseQuadraticNeuron::new(t, n, &mut r);
            // T4Identity holds the same tensors as T4 (the identity adds none).
            assert_eq!(neuron.param_count(), t.param_count(n), "type {}", t);
            assert_eq!(neuron.neuron_type(), t);
        }
    }

    #[test]
    fn ours_forward_matches_manual_formula() {
        let mut r = rng();
        let n = 5;
        let neuron = DenseQuadraticNeuron::new(NeuronType::Ours, n, &mut r);
        let x = Tensor::randn(&[n], 0.0, 1.0, &mut r);
        let wa = neuron.wa.as_ref().unwrap();
        let wb = neuron.wb.as_ref().unwrap();
        let wc = neuron.wc.as_ref().unwrap();
        let expect = wa.dot(&x).unwrap() * wb.dot(&x).unwrap() + wc.dot(&x).unwrap();
        assert!((neuron.forward(&x) - expect).abs() < 1e-5);
    }

    #[test]
    fn t3_square_of_linear_is_nonnegative_without_bias() {
        let mut r = rng();
        let neuron = DenseQuadraticNeuron::new(NeuronType::T3, 8, &mut r);
        for _ in 0..20 {
            let x = Tensor::randn(&[8], 0.0, 1.0, &mut r);
            assert!(neuron.forward(&x) >= 0.0);
        }
    }

    #[test]
    fn t1_quadratic_form_scaling() {
        // f(2x) - linear part should be 4x the quadratic part of f(x).
        let mut r = rng();
        let neuron = DenseQuadraticNeuron::new(NeuronType::T1, 6, &mut r);
        let x = Tensor::randn(&[6], 0.0, 1.0, &mut r);
        let lin = neuron.wa.as_ref().unwrap();
        let fx = neuron.forward(&x) - lin.dot(&x).unwrap();
        let x2 = x.mul_scalar(2.0);
        let fx2 = neuron.forward(&x2) - lin.dot(&x2).unwrap();
        assert!((fx2 - 4.0 * fx).abs() < 1e-4);
    }

    #[test]
    fn all_types_forward_produce_finite_values() {
        let mut r = rng();
        for t in NeuronType::ALL {
            let neuron = DenseQuadraticNeuron::new(t, 10, &mut r);
            let x = Tensor::randn(&[10], 0.0, 1.0, &mut r);
            assert!(neuron.forward(&x).is_finite(), "type {}", t);
        }
    }

    #[test]
    fn neuron_type_serde_roundtrip() {
        for t in NeuronType::ALL {
            let json = serde_json::to_string(&t).unwrap();
            let back: NeuronType = serde_json::from_str(&json).unwrap();
            assert_eq!(back, t);
        }
    }
}
