//! Offline stand-in for the subset of `criterion` that QuadraLib-rs uses.
//!
//! The statistical machinery (bootstrapping, outlier classification, HTML
//! reports) is replaced with a plain wall-clock loop: each benchmark is warmed
//! up once, timed over `sample_size` iterations, and the mean per-iteration
//! time is printed. This keeps `cargo bench` useful for relative comparisons
//! (quadratic vs first-order layers, hybrid vs default BP) without network
//! dependencies.
//!
//! Setting the `QUADRA_BENCH_JSON` environment variable to a file path makes
//! the harness additionally write every timing as a machine-readable JSON
//! record (`[name, ns_per_iter, iters]` triples under a `"records"` key), so
//! CI can archive per-PR perf trajectories (e.g. `BENCH_gemm.json`).

use std::fmt::Display;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// One completed measurement: `(benchmark name, mean ns per iteration, iters)`.
#[derive(serde::Serialize, serde::Deserialize, Debug, Clone, PartialEq)]
pub struct BenchRecord(pub String, pub f64, pub u64);

/// The full machine-readable report written to `QUADRA_BENCH_JSON`.
#[derive(serde::Serialize, serde::Deserialize, Debug, Clone, PartialEq)]
pub struct BenchReport {
    /// Every measurement of the process, in execution order.
    pub records: Vec<BenchRecord>,
}

/// Accumulated records of this process (all groups share one report file).
static RECORDS: Mutex<Vec<BenchRecord>> = Mutex::new(Vec::new());

fn json_report_path() -> Option<String> {
    std::env::var("QUADRA_BENCH_JSON").ok().filter(|p| !p.is_empty())
}

fn record_measurement(name: &str, per_iter: Duration, iters: u64) {
    if json_report_path().is_none() {
        return;
    }
    RECORDS.lock().unwrap().push(BenchRecord(name.to_string(), per_iter.as_nanos() as f64, iters));
}

fn flush_json_report() {
    let Some(path) = json_report_path() else { return };
    let report = BenchReport { records: RECORDS.lock().unwrap().clone() };
    match serde_json::to_string_pretty(&report) {
        Ok(text) => {
            if let Err(e) = std::fs::write(&path, text + "\n") {
                eprintln!("criterion stub: cannot write {path}: {e}");
            }
        }
        Err(e) => eprintln!("criterion stub: cannot serialize bench report: {e}"),
    }
}

/// Prevent the optimiser from deleting a benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Function name + parameter value.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId { label: format!("{}/{}", name.into(), parameter) }
    }

    /// Parameter-only id (used inside `bench_with_input`).
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { label: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { label: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { label: s }
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `f`, running it `iters` times after one warm-up call.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f());
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn human(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

fn run_one(group: Option<&str>, id: &BenchmarkId, iters: u64, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher { iters: iters.max(1), elapsed: Duration::ZERO };
    f(&mut b);
    let per_iter = b.elapsed / (b.iters as u32);
    let name = match group {
        Some(g) => format!("{g}/{}", id.label),
        None => id.label.clone(),
    };
    println!("{name:<48} {:>12}/iter ({} iters)", human(per_iter), b.iters);
    record_measurement(&name, per_iter, b.iters);
}

/// Top-level benchmark driver (mirror of `criterion::Criterion`).
pub struct Criterion {
    default_iters: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { default_iters: 20 }
    }
}

impl Drop for Criterion {
    /// Rewrite the JSON report with everything measured so far. Each group
    /// macro builds its own `Criterion`, so the last drop of the process
    /// leaves the complete record set on disk.
    fn drop(&mut self) {
        flush_json_report();
    }
}

impl Criterion {
    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== group: {name} ==");
        BenchmarkGroup { name, iters: self.default_iters, _criterion: self }
    }

    /// Run a single stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        run_one(None, &id.into(), self.default_iters, &mut f);
        self
    }
}

/// A group of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    iters: u64,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Number of timed iterations per benchmark (criterion's sample count is
    /// reinterpreted as the iteration count of the single timing loop).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.iters = n.max(1) as u64;
        self
    }

    /// Measurement-time hint — accepted and ignored (one timing loop only).
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Benchmark a closure.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        run_one(Some(&self.name), &id.into(), self.iters, &mut f);
        self
    }

    /// Benchmark a closure against an explicit input value.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_one(Some(&self.name), &id, self.iters, &mut |b| f(b, input));
        self
    }

    /// Close the group.
    pub fn finish(self) {}
}

/// Collect benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generate `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    /// `QUADRA_BENCH_JSON` is process-global and every `Criterion` drop reads
    /// it; tests that construct a `Criterion` serialize on this lock so a
    /// sibling's drop-flush cannot race the env-var test's set/read window.
    static ENV_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn group_runs_and_times() {
        let _guard = ENV_LOCK.lock().unwrap();
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.sample_size(3);
        let mut runs = 0u32;
        group.bench_function("count", |b| b.iter(|| runs += 1));
        // one warm-up + 3 timed iterations
        assert_eq!(runs, 4);
        group.bench_with_input(BenchmarkId::from_parameter(7), &7usize, |b, &n| b.iter(|| black_box(n * 2)));
        group.finish();
    }

    #[test]
    fn json_report_written_when_env_set() {
        let _guard = ENV_LOCK.lock().unwrap();
        let path = std::env::temp_dir().join(format!("criterion_stub_report_{}.json", std::process::id()));
        std::env::set_var("QUADRA_BENCH_JSON", &path);
        {
            let mut c = Criterion::default();
            let mut group = c.benchmark_group("json");
            group.sample_size(2);
            group.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
            group.finish();
        } // drop flushes
        std::env::remove_var("QUADRA_BENCH_JSON");
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::remove_file(&path).ok();
        let report: BenchReport = serde_json::from_str(&text).unwrap();
        let rec = report.records.iter().find(|r| r.0 == "json/noop").expect("record present");
        assert!(rec.1 >= 0.0);
        assert_eq!(rec.2, 2);
    }
}
