//! Property-based tests of the blocked GEMM kernels against the naive
//! triple-loop reference: random shapes including edge sizes 0/1 and sizes
//! that are not multiples of the MR×NR tile, plus the transpose-free
//! `nt`/`tn` variants against transpose-then-gemm.

use proptest::prelude::*;
use quadra_tensor::gemm::{
    gemm, gemm_blocked, gemm_naive, gemm_nt, gemm_nt_blocked, gemm_tn, gemm_tn_blocked,
};
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;
use rayon::ThreadPool;

fn randvec(len: usize, seed: u64) -> Vec<f32> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..len).map(|_| rng.gen_range(-2.0f32..2.0)).collect()
}

fn transpose(src: &[f32], rows: usize, cols: usize) -> Vec<f32> {
    let mut out = vec![0.0f32; rows * cols];
    for r in 0..rows {
        for c in 0..cols {
            out[c * rows + r] = src[r * cols + c];
        }
    }
    out
}

fn assert_close(fast: &[f32], slow: &[f32], tol: f32) {
    assert_eq!(fast.len(), slow.len());
    for (i, (x, y)) in fast.iter().zip(slow.iter()).enumerate() {
        assert!((x - y).abs() <= tol, "index {}: {} vs {}", i, x, y);
    }
}

/// Dimension strategy biased toward tile boundaries: 0, 1, multiples of 8 and
/// their neighbours, sizes past one MC = 128 row block (129, 300) so the
/// multi-block loops run with more than one block, and 300 also exceeds one
/// KC = 256 k-panel when drawn for `k`.
fn dim() -> impl Strategy<Value = usize> {
    proptest::sample::select(vec![0usize, 1, 2, 3, 5, 7, 8, 9, 15, 16, 17, 24, 31, 33, 40, 65, 70, 129, 300])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Blocked GEMM ≡ naive reference for random shapes and data.
    #[test]
    fn blocked_matches_naive((m, k, n) in (dim(), dim(), dim()), seed in 0u64..1_000_000) {
        let a = randvec(m * k, seed);
        let b = randvec(k * n, seed ^ 0xdead_beef);
        let slow = gemm_naive(&a, &b, m, k, n);
        let tol = 1e-4 * (k.max(1) as f32);
        assert_close(&gemm_blocked(&a, &b, m, k, n), &slow, tol);
        // The public dispatcher (naive fallback below the blocking threshold)
        // must agree as well.
        assert_close(&gemm(&a, &b, m, k, n), &slow, tol);
    }

    /// `gemm_nt` ≡ transpose B then gemm, for both dispatch and blocked paths.
    #[test]
    fn nt_matches_transpose_then_gemm((m, k, n) in (dim(), dim(), dim()), seed in 0u64..1_000_000) {
        let a = randvec(m * k, seed.wrapping_add(1));
        let bt = randvec(n * k, seed.wrapping_add(2)); // stored [n, k]
        let b = transpose(&bt, n, k);
        let slow = gemm_naive(&a, &b, m, k, n);
        let tol = 1e-4 * (k.max(1) as f32);
        assert_close(&gemm_nt(&a, &bt, m, k, n), &slow, tol);
        assert_close(&gemm_nt_blocked(&a, &bt, m, k, n), &slow, tol);
    }

    /// `gemm_tn` ≡ transpose A then gemm, for both dispatch and blocked paths.
    #[test]
    fn tn_matches_transpose_then_gemm((m, k, n) in (dim(), dim(), dim()), seed in 0u64..1_000_000) {
        let at = randvec(k * m, seed.wrapping_add(3)); // stored [k, m]
        let a = transpose(&at, k, m);
        let b = randvec(k * n, seed.wrapping_add(4));
        let slow = gemm_naive(&a, &b, m, k, n);
        let tol = 1e-4 * (k.max(1) as f32);
        assert_close(&gemm_tn(&at, &b, m, k, n), &slow, tol);
        assert_close(&gemm_tn_blocked(&at, &b, m, k, n), &slow, tol);
    }
}

/// Thread counts the parallel tests sweep: degenerate, smallest real pool,
/// and whatever the host offers.
fn pool_sizes() -> [usize; 3] {
    let avail = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    [1, 2, avail]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The parallel dispatcher agrees with the naive reference regardless of
    /// how many work-stealing threads execute the row blocks.
    #[test]
    fn parallel_matches_naive_across_pool_sizes((m, k, n) in (dim(), dim(), dim()), seed in 0u64..1_000_000) {
        let a = randvec(m * k, seed ^ 0x5eed);
        let b = randvec(k * n, seed ^ 0xfeed);
        let slow = gemm_naive(&a, &b, m, k, n);
        let tol = 1e-4 * (k.max(1) as f32);
        for threads in pool_sizes() {
            let pool = ThreadPool::new(threads);
            let fast = pool.install(|| gemm(&a, &b, m, k, n));
            assert_close(&fast, &slow, tol);
        }
    }
}

/// Deterministic MR/NR/MC/KC edge coverage through every pool size: shapes
/// straddle the 8-wide micro-tile, the MC = 128 row block, and the KC = 256
/// k-panel, and the larger ones clear the parallel-dispatch FLOP threshold so
/// the row blocks really run as stealable pool tasks.
#[test]
fn parallel_gemm_tile_edges_across_thread_counts() {
    let shapes = [
        (7usize, 9usize, 8usize), // under one MR×NR tile, stays sequential
        (129, 256, 16),           // one row past MC, exactly one KC panel
        (136, 257, 24),           // MC-multiple rows, one past KC
        (300, 40, 33),            // several row blocks, ragged NR edge
        (256, 300, 8),            // k spans two KC panels, narrow n
    ];
    for threads in pool_sizes() {
        let pool = ThreadPool::new(threads);
        for &(m, k, n) in &shapes {
            let a = randvec(m * k, (m * 31 + k * 7 + n) as u64);
            let b = randvec(k * n, (m + k * 13 + n * 3) as u64);
            let slow = gemm_naive(&a, &b, m, k, n);
            let tol = 1e-4 * (k as f32);
            let fast = pool.install(|| gemm(&a, &b, m, k, n));
            assert_close(&fast, &slow, tol);
        }
    }
}
