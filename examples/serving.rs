//! Multi-model serving: stand up a `Router` over two CNN architectures,
//! drive both endpoints from concurrent client threads with mixed priority
//! classes, hot-reload one endpoint's checkpoint without disturbing the
//! other, shed load through the bounded admission queue, and print the
//! per-model serving metrics.
//!
//! Run with: `cargo run --release --example serving`

use quadralib::core::{build_model, LayerSpec, ModelConfig};
use quadralib::data::ShapeImageDataset;
use quadralib::nn::{ConstantLr, CrossEntropyLoss, Layer, Sgd, StateDict, Trainer, TrainerConfig};
use quadralib::serve::{AdmissionPolicy, BatchPolicy, Priority, Router, ServeConfig, ServeError};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

fn cnn_config(name: &str, width: usize) -> ModelConfig {
    ModelConfig::new(
        name,
        3,
        16,
        4,
        vec![
            LayerSpec::Conv {
                out_channels: width,
                kernel: 3,
                stride: 1,
                padding: 1,
                groups: 1,
                batch_norm: true,
                relu: true,
            },
            LayerSpec::Conv {
                out_channels: 2 * width,
                kernel: 3,
                stride: 2,
                padding: 1,
                groups: 1,
                batch_norm: true,
                relu: true,
            },
            LayerSpec::GlobalAvgPool,
            LayerSpec::Linear { out_features: 4, relu: false },
        ],
    )
}

fn main() {
    // Two endpoints with their own batch policies behind one router: a small
    // "light" CNN and a wider "heavy" one. Adaptive wait budgets are on by
    // default; admission is bounded so overload sheds instead of queueing.
    let config = |max_batch: usize| ServeConfig {
        workers: 2,
        policy: BatchPolicy {
            max_batch_size: max_batch,
            max_wait: Duration::from_millis(1),
            ..BatchPolicy::default()
        },
        admission: AdmissionPolicy { queue_capacity: Some(64) },
    };
    let router = Router::builder()
        .endpoint("light", config(8), || {
            Box::new(build_model(&cnn_config("light", 8), &mut StdRng::seed_from_u64(7)))
        })
        .endpoint("heavy", config(16), || {
            Box::new(build_model(&cnn_config("heavy", 16), &mut StdRng::seed_from_u64(8)))
        })
        .start()
        .expect("router starts");

    // Closed-loop clients hammering both endpoints from their own threads,
    // mixing interactive and batch-class traffic.
    let run_clients = |label: &str| {
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let client = router.client();
                std::thread::spawn(move || {
                    let model = if t % 2 == 0 { "light" } else { "heavy" };
                    let priority = if t < 2 { Priority::Interactive } else { Priority::Batch };
                    let images = ShapeImageDataset::generate(32, 4, 16, 3, 0.05, t).images;
                    let mut shed = 0u32;
                    for i in 0..32 {
                        let x = images.narrow(0, i, 1).unwrap();
                        match client.submit(model, x, priority).map(|p| p.wait()) {
                            Ok(Ok(response)) => assert_eq!(response.output.shape(), &[1, 4]),
                            Ok(Err(e)) => panic!("serving failed: {e}"),
                            Err(ServeError::Overloaded { retry_after }) => {
                                // Bounded queues push back instead of buffering.
                                shed += 1;
                                std::thread::sleep(retry_after);
                            }
                            Err(e) => panic!("submit failed: {e}"),
                        }
                    }
                    shed
                })
            })
            .collect();
        let shed: u32 = handles.into_iter().map(|h| h.join().unwrap()).sum();
        println!("[{label}] shed at admission: {shed}");
        println!("{}\n", router.metrics().describe());
    };
    run_clients("fresh weights");

    // Meanwhile, "retrain" the light model and hot-reload its checkpoint:
    // requests issued after `reload` returns are answered by the new version,
    // and the heavy endpoint keeps serving version 0 untouched.
    let mut trained = build_model(&cnn_config("light", 8), &mut StdRng::seed_from_u64(7));
    let data = ShapeImageDataset::generate(64, 4, 16, 3, 0.05, 42);
    Trainer::new(TrainerConfig { epochs: 2, batch_size: 16, ..TrainerConfig::default() }).fit(
        &mut trained,
        &CrossEntropyLoss::new(),
        &mut Sgd::plain(0.05),
        &ConstantLr::new(0.05),
        &data.images,
        &data.labels,
        None,
    );
    trained.clear_cache();
    let version = router.reload("light", StateDict::from_layer(&trained)).expect("compatible checkpoint");
    println!(
        "hot-reloaded `light` as version {version}; `heavy` still serves version {}",
        router.version("heavy").unwrap()
    );
    run_clients("after reload");

    let metrics = router.shutdown();
    println!("final:\n{}", metrics.describe());
    for snapshot in &metrics.models {
        println!("\n[{}] batch occupancy:\n{}", snapshot.model, snapshot.occupancy_ascii(40));
    }
}
