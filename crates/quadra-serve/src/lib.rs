//! # quadra-serve
//!
//! Batched inference serving for QuadraLib-rs: the subsystem that turns the
//! training library into a serving *system* — the throughput/latency side of
//! the MLSys story.
//!
//! ## Architecture
//!
//! Everything is plain threads (compatible with the vendored rayon; no async
//! runtime). The engine is a **[`Router`]** fronting N named model endpoints
//! behind one admission layer and one fleet scheduler, and the request
//! lifecycle — admission, priority, deadline, cancellation, scheduling — is
//! the core API:
//!
//! * Requests are built with the typed **[`Request`]** builder
//!   (`Request::new(input).priority(..).deadline(..).tag(..)`) and submitted
//!   with [`RouterClient::send`], which returns a **[`ResponseHandle`]**
//!   supporting `wait` / `wait_timeout` / `try_wait` / `cancel`. Responses
//!   carry per-request provenance: model, version, batch id, queue wait, and
//!   the echoed tag.
//! * **Admission** is bounded and priority-aware: each endpoint keeps one
//!   bounded queue per [`Priority`] class (`Interactive` seeds batches before
//!   `Batch`, tempered by an aging credit so the batch class is never fully
//!   starved). A full class queue sheds the request synchronously with
//!   [`ServeError::Overloaded`] — carrying a `retry_after` estimate derived
//!   from the live queue depth and measured batch-service time — instead of
//!   queueing forever.
//! * **Batch formation is worker-pull**: an idle worker pulls straight from
//!   the admission queue and coalesces a batch under the endpoint's
//!   [`BatchPolicy`] only at that moment — no standalone batcher thread, no
//!   batch formed ahead of execution, so an admitted request's floor sojourn
//!   under overload is one batch service time, not two. The wait budget is
//!   adaptive by default (EWMA inter-arrival × remaining fill, capped by
//!   2 × EWMA service time and `max_wait`). Only same-shape requests coalesce
//!   by default; `BatchPolicy::pad_mixed_spatial` opts NCHW inputs into
//!   zero-padded mixed-size batches. Cancelled and deadline-expired requests
//!   are shed at this dispatch moment with [`ServeError::Cancelled`] /
//!   [`ServeError::DeadlineExceeded`].
//! * **Weighted fair sharing**: endpoints contend for the worker CPU through
//!   a deficit-round-robin fleet scheduler — under contention each endpoint
//!   is granted batch service time proportional to [`ServeConfig::weight`],
//!   so a saturated light model cannot crowd out a heavy one. Uncontended
//!   endpoints are never throttled (work conservation).
//! * A per-endpoint **worker pool** of N model replicas, each owned by a
//!   dedicated worker thread, executes batches in eval mode. Replicas are
//!   built *on* their worker thread by a `Fn() -> Box<dyn Layer>` factory, so
//!   the [`Layer`](quadra_nn::Layer) trait needs no `Send` bound.
//! * **Checkpoint hot-reload** is per endpoint: a
//!   [`StateDict`](quadra_nn::StateDict) is validated, published, and
//!   atomically picked up by that endpoint's workers between batches —
//!   without disturbing any other endpoint. Responses carry the model version
//!   that produced them.
//! * **[`ServeMetrics`]** are per model (and shed counts per priority class):
//!   throughput, p50/p95/max latency over the endpoint's own window — never
//!   blended across a heterogeneous fleet — batch-occupancy histogram, queue
//!   depth, current wait budget, cancelled / deadline-missed counters, the
//!   fair-share service-time ledger, and per-batch activation memory
//!   attributed through `quadra_core::MemoryProfiler::inference_report_for`.
//!   [`Router::metrics`] rolls the fleet up into [`RouterMetrics`]
//!   (including [`RouterMetrics::service_share`]).
//!
//! Single-architecture callers keep the one-line path: [`InferenceServer`] is
//! a router with exactly one endpoint, and [`ServeClient::submit`] /
//! [`ServeClient::submit_with_priority`] remain as thin wrappers over the
//! [`Request`] builder.
//!
//! ## Example
//!
//! ```
//! use quadra_nn::{Layer, Linear, Relu, Sequential, StateDict};
//! use quadra_serve::{InferenceServer, Priority, Request, ServeConfig};
//! use quadra_tensor::Tensor;
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//! use std::time::Duration;
//!
//! let model = |seed: u64| -> Box<dyn Layer> {
//!     let mut rng = StdRng::seed_from_u64(seed);
//!     Box::new(Sequential::new(vec![
//!         Box::new(Linear::new(4, 16, true, &mut rng)),
//!         Box::new(Relu::new()),
//!         Box::new(Linear::new(16, 3, true, &mut rng)),
//!     ]))
//! };
//! let server = InferenceServer::start(ServeConfig::default(), move || model(0)).unwrap();
//! let client = server.client();
//!
//! // Serve a batch of two 4-feature rows, with the full lifecycle API: a
//! // priority class, a deadline, and a tag echoed back in the response.
//! let handle = client
//!     .send(
//!         Request::new(Tensor::ones(&[2, 4]))
//!             .priority(Priority::Interactive)
//!             .deadline(Duration::from_secs(5))
//!             .tag("doc-example"),
//!     )
//!     .unwrap();
//! let response = handle.wait().unwrap();
//! assert_eq!(response.output.shape(), &[2, 3]);
//! assert_eq!(response.model_version, 0);
//! assert_eq!(response.tag.as_deref(), Some("doc-example"));
//!
//! // Hot-reload different weights; later responses report the new version.
//! let mut rng = StdRng::seed_from_u64(1);
//! let retrained = Sequential::new(vec![
//!     Box::new(Linear::new(4, 16, true, &mut rng)),
//!     Box::new(Relu::new()),
//!     Box::new(Linear::new(16, 3, true, &mut rng)),
//! ]);
//! let version = server.reload(StateDict::from_layer(&retrained)).unwrap();
//! assert_eq!(version, 1);
//!
//! let metrics = server.shutdown();
//! assert_eq!(metrics.completed_requests, 1);
//! ```
//!
//! For the multi-model form — several architectures, per-model policies,
//! priority classes, fair-share weights and load shedding — see [`Router`].

#![warn(missing_docs)]

mod admission;
mod clock;
mod endpoint;
mod metrics;
mod request;
mod scheduler;
mod server;
mod sync;
mod worker;

pub use metrics::{RouterMetrics, ServeMetrics};
pub use request::{
    AdmissionPolicy, BatchPolicy, InferResponse, PendingResponse, Priority, Request, ResponseHandle,
    ServeConfig, ServeError,
};
pub use server::{InferenceServer, Router, RouterBuilder, RouterClient, ServeClient, DEFAULT_ENDPOINT};

/// Alias emphasising the paper-facing name of the subsystem: the pool of
/// model replicas behind the scheduler.
pub type ModelWorkerPool = InferenceServer;
