//! A small hand-rolled Rust lexer: just enough token structure for the
//! analysis passes, with no dependency on `syn` or `proc-macro2`.
//!
//! The lexer is exact about the three things that break naive text scanning:
//! string literals (including raw and byte strings), comments (including
//! nested block comments), and the `'a` lifetime vs `'a'` char-literal
//! ambiguity. Everything else is reduced to identifiers, numbers, and
//! single-character punctuation, each tagged with its 1-based source line.

/// Token classification. The passes match almost exclusively on
/// [`TokKind::Ident`] and [`TokKind::Punct`]; the literal kinds exist so
/// pattern text inside strings can never false-positive a lint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`fn`, `self`, `unwrap`, ...).
    Ident,
    /// Single punctuation character (`.`, `(`, `[`, `!`, ...).
    Punct,
    /// String literal of any flavour (`"..."`, `r#"..."#`, `b"..."`).
    Str,
    /// Char or byte-char literal (`'x'`, `b'\n'`).
    Char,
    /// Numeric literal (`42`, `0xff`, `1.5e3`, `1_000u64`).
    Num,
    /// Lifetime (`'a`, `'static`).
    Lifetime,
}

/// One lexed token.
#[derive(Debug, Clone)]
pub struct Tok {
    /// Token classification.
    pub kind: TokKind,
    /// Source text. For [`TokKind::Punct`] this is a single character; string
    /// literals keep their quotes so the text is never mistaken for code.
    pub text: String,
    /// 1-based line the token starts on.
    pub line: u32,
}

impl Tok {
    /// True when the token is the identifier `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    /// True when the token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct && self.text.len() == 1 && self.text.starts_with(c)
    }
}

/// A `//` comment, captured out-of-band so suppression directives can be
/// parsed without polluting the token stream.
#[derive(Debug, Clone)]
pub struct LineComment {
    /// Text after the `//` (doc-comment slashes stripped too).
    pub text: String,
    /// 1-based line of the comment.
    pub line: u32,
}

/// Output of [`lex`]: the token stream plus the side-channel comment list.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Code tokens in source order.
    pub toks: Vec<Tok>,
    /// Line comments in source order.
    pub comments: Vec<LineComment>,
}

fn is_ident_start(c: char) -> bool {
    c.is_ascii_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_'
}

/// Lex `src` into tokens and comments. Unterminated literals are tolerated
/// (the rest of the file becomes one literal token) so a half-edited file
/// cannot crash the gate.
pub fn lex(src: &str) -> Lexed {
    let chars: Vec<char> = src.chars().collect();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line: u32 = 1;

    // Advance over `chars[from..to)` counting newlines.
    let count_lines = |from: usize, to: usize, chars: &[char]| -> u32 {
        chars[from..to].iter().filter(|&&c| c == '\n').count() as u32
    };

    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        // Comments.
        if c == '/' && i + 1 < chars.len() {
            if chars[i + 1] == '/' {
                let start = i + 2;
                let mut j = start;
                while j < chars.len() && chars[j] != '\n' {
                    j += 1;
                }
                let mut text: String = chars[start..j].iter().collect();
                // Strip the extra marker of doc comments (`///`, `//!`).
                while text.starts_with('/') || text.starts_with('!') {
                    text.remove(0);
                }
                out.comments.push(LineComment { text: text.trim().to_string(), line });
                i = j;
                continue;
            }
            if chars[i + 1] == '*' {
                // Nested block comment.
                let start = i;
                let mut depth = 1usize;
                let mut j = i + 2;
                while j < chars.len() && depth > 0 {
                    if chars[j] == '/' && j + 1 < chars.len() && chars[j + 1] == '*' {
                        depth += 1;
                        j += 2;
                    } else if chars[j] == '*' && j + 1 < chars.len() && chars[j + 1] == '/' {
                        depth -= 1;
                        j += 2;
                    } else {
                        j += 1;
                    }
                }
                line += count_lines(start, j.min(chars.len()), &chars);
                i = j;
                continue;
            }
        }
        // Raw / byte string prefixes: r"", r#""#, br"", b"", b''.
        if c == 'r' || c == 'b' {
            let mut j = i + 1;
            let mut raw_candidate = c == 'r';
            if c == 'b' && j < chars.len() && chars[j] == 'r' {
                raw_candidate = true;
                j += 1;
            }
            let mut hashes = 0usize;
            if raw_candidate {
                while j < chars.len() && chars[j] == '#' {
                    hashes += 1;
                    j += 1;
                }
            }
            if raw_candidate && j < chars.len() && chars[j] == '"' {
                // Raw string: ends at `"` followed by `hashes` hashes.
                let start = i;
                let mut k = j + 1;
                'scan: while k < chars.len() {
                    if chars[k] == '"' {
                        let mut h = 0usize;
                        while h < hashes && k + 1 + h < chars.len() && chars[k + 1 + h] == '#' {
                            h += 1;
                        }
                        if h == hashes {
                            k += 1 + hashes;
                            break 'scan;
                        }
                    }
                    k += 1;
                }
                let text: String = chars[start..k.min(chars.len())].iter().collect();
                out.toks.push(Tok { kind: TokKind::Str, text, line });
                line += count_lines(start, k.min(chars.len()), &chars);
                i = k;
                continue;
            }
            if c == 'b' && i + 1 < chars.len() && chars[i + 1] == '"' {
                let (tok, next, nl) = lex_quoted(&chars, i + 1, '"', line);
                out.toks.push(Tok { kind: TokKind::Str, text: format!("b{}", tok), line });
                line += nl;
                i = next;
                continue;
            }
            if c == 'b' && i + 1 < chars.len() && chars[i + 1] == '\'' {
                let (tok, next, nl) = lex_quoted(&chars, i + 1, '\'', line);
                out.toks.push(Tok { kind: TokKind::Char, text: format!("b{}", tok), line });
                line += nl;
                i = next;
                continue;
            }
            // Fall through: plain identifier starting with r/b.
        }
        if c == '"' {
            let (tok, next, nl) = lex_quoted(&chars, i, '"', line);
            out.toks.push(Tok { kind: TokKind::Str, text: tok, line });
            line += nl;
            i = next;
            continue;
        }
        if c == '\'' {
            // Char literal vs lifetime. `'\...` is always a char; `'x'` is a
            // char; `'ident` (no closing quote right after) is a lifetime.
            let next1 = chars.get(i + 1).copied();
            let next2 = chars.get(i + 2).copied();
            let is_char = match next1 {
                Some('\\') => true,
                Some(_) => next2 == Some('\''),
                None => false,
            };
            if is_char {
                let (tok, next, nl) = lex_quoted(&chars, i, '\'', line);
                out.toks.push(Tok { kind: TokKind::Char, text: tok, line });
                line += nl;
                i = next;
                continue;
            }
            let mut j = i + 1;
            while j < chars.len() && is_ident_continue(chars[j]) {
                j += 1;
            }
            let text: String = chars[i..j].iter().collect();
            out.toks.push(Tok { kind: TokKind::Lifetime, text, line });
            i = j;
            continue;
        }
        if is_ident_start(c) {
            let mut j = i + 1;
            while j < chars.len() && is_ident_continue(chars[j]) {
                j += 1;
            }
            let text: String = chars[i..j].iter().collect();
            out.toks.push(Tok { kind: TokKind::Ident, text, line });
            i = j;
            continue;
        }
        if c.is_ascii_digit() {
            let mut j = i + 1;
            while j < chars.len() && (is_ident_continue(chars[j])) {
                j += 1;
            }
            // Fractional part — but never swallow `..` (range syntax).
            if j < chars.len() && chars[j] == '.' && chars.get(j + 1).is_some_and(|d| d.is_ascii_digit()) {
                j += 1;
                while j < chars.len() && is_ident_continue(chars[j]) {
                    j += 1;
                }
            }
            let text: String = chars[i..j].iter().collect();
            out.toks.push(Tok { kind: TokKind::Num, text, line });
            i = j;
            continue;
        }
        out.toks.push(Tok { kind: TokKind::Punct, text: c.to_string(), line });
        i += 1;
    }
    out
}

/// Lex a quoted literal starting at `chars[start] == quote`, honouring
/// backslash escapes. Returns (text-with-quotes, next index, newlines seen).
fn lex_quoted(chars: &[char], start: usize, quote: char, _line: u32) -> (String, usize, u32) {
    let mut j = start + 1;
    let mut newlines = 0u32;
    while j < chars.len() {
        match chars[j] {
            '\\' => j += 2,
            '\n' => {
                newlines += 1;
                j += 1;
            }
            c if c == quote => {
                j += 1;
                let text: String = chars[start..j].iter().collect();
                return (text, j, newlines);
            }
            _ => j += 1,
        }
    }
    let text: String = chars[start..].iter().collect();
    (text, chars.len(), newlines)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src).toks.into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn idents_and_punct() {
        let toks = kinds("self.state.lock()");
        let texts: Vec<&str> = toks.iter().map(|(_, t)| t.as_str()).collect();
        assert_eq!(texts, vec!["self", ".", "state", ".", "lock", "(", ")"]);
    }

    #[test]
    fn string_contents_are_not_code() {
        let toks = kinds(r#"let s = "x.lock().unwrap()";"#);
        assert!(toks.iter().filter(|(k, _)| *k == TokKind::Ident).all(|(_, t)| t != "unwrap"));
        assert_eq!(toks.iter().filter(|(k, _)| *k == TokKind::Str).count(), 1);
    }

    #[test]
    fn raw_string_with_hashes() {
        let toks = kinds(r##"let s = r#"has "quotes" and .unwrap()"#; x"##);
        assert_eq!(toks.iter().filter(|(k, _)| *k == TokKind::Str).count(), 1);
        assert!(toks.iter().any(|(k, t)| *k == TokKind::Ident && t == "x"));
    }

    #[test]
    fn char_vs_lifetime() {
        let toks = kinds(r"fn f<'a>(x: &'a str) { let c = 'x'; let n = '\n'; }");
        let lifetimes = toks.iter().filter(|(k, _)| *k == TokKind::Lifetime).count();
        let chars_ = toks.iter().filter(|(k, _)| *k == TokKind::Char).count();
        assert_eq!(lifetimes, 2);
        assert_eq!(chars_, 2);
    }

    #[test]
    fn nested_block_comments_skipped() {
        let toks = kinds("a /* outer /* inner */ still comment */ b");
        let texts: Vec<&str> = toks.iter().map(|(_, t)| t.as_str()).collect();
        assert_eq!(texts, vec!["a", "b"]);
    }

    #[test]
    fn line_comments_captured_with_lines() {
        let lexed = lex("let a = 1; // quadra-analyze: allow(panic_path, test)\nlet b = 2;");
        assert_eq!(lexed.comments.len(), 1);
        assert_eq!(lexed.comments[0].line, 1);
        assert!(lexed.comments[0].text.contains("allow(panic_path"));
        assert_eq!(lexed.toks.iter().filter(|t| t.is_ident("let")).count(), 2);
    }

    #[test]
    fn range_after_number_not_swallowed() {
        let toks = kinds("for i in 0..n {}");
        assert!(toks.iter().any(|(k, t)| *k == TokKind::Num && t == "0"));
        assert!(toks.iter().any(|(k, t)| *k == TokKind::Ident && t == "n"));
    }

    #[test]
    fn byte_string_and_byte_char() {
        let toks = kinds(r#"let a = b"bytes"; let c = b'x';"#);
        assert_eq!(toks.iter().filter(|(k, _)| *k == TokKind::Str).count(), 1);
        assert_eq!(toks.iter().filter(|(k, _)| *k == TokKind::Char).count(), 1);
    }

    #[test]
    fn doc_comment_markers_stripped() {
        let lexed = lex("/// doc line\n//! inner doc\nfn f() {}");
        assert_eq!(lexed.comments.len(), 2);
        assert_eq!(lexed.comments[0].text, "doc line");
        assert_eq!(lexed.comments[1].text, "inner doc");
    }
}
