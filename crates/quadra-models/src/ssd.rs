//! A grid-based single-shot detector (the SSD stand-in of Table 6) with
//! mean-average-precision evaluation.
//!
//! The detector predicts, for every cell of a `G×G` grid over the image, a
//! class distribution (including background) and a bounding box. A ground-truth
//! object is assigned to the cell containing its centre, exactly one box per
//! cell — a deliberately simplified SSD with a single scale and a single
//! default box, which keeps CPU training tractable while preserving the
//! pipeline the paper compares across backbones (first-order vs quadratic,
//! scratch vs pre-trained).

use quadra_core::{build_model, AutoBuilder, LayerSpec, ModelConfig, NeuronType};
use quadra_data::{DetectionDataset, GtBox};
use quadra_nn::{Conv2d, CrossEntropyLoss, Layer, Loss, Optimizer, Sequential, Sgd, SgdConfig, SmoothL1Loss};
use quadra_tensor::Tensor;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Configuration of the detector.
#[derive(Debug, Clone, Copy)]
pub struct DetectorConfig {
    /// Number of object classes (background handled internally).
    pub num_classes: usize,
    /// Input image side length.
    pub image_size: usize,
    /// Backbone channel width of the first stage.
    pub backbone_width: usize,
    /// Grid resolution of the detection head (`G×G` cells).
    pub grid: usize,
    /// Replace backbone convolutions with quadratic ones of this type.
    pub quadratic: Option<NeuronType>,
    /// Weight-initialisation seed.
    pub seed: u64,
}

impl Default for DetectorConfig {
    fn default() -> Self {
        DetectorConfig {
            num_classes: 5,
            image_size: 32,
            backbone_width: 8,
            grid: 4,
            quadratic: None,
            seed: 0,
        }
    }
}

/// One decoded detection.
#[derive(Debug, Clone, PartialEq)]
pub struct DetectionOutput {
    /// Predicted class in `0..num_classes`.
    pub class: usize,
    /// Confidence score (class probability).
    pub score: f32,
    /// Predicted box in normalised coordinates.
    pub bbox: GtBox,
}

/// Per-class AP and mAP, as reported in Table 6.
#[derive(Debug, Clone, Default)]
pub struct MapReport {
    /// Average precision per class at IoU 0.5.
    pub per_class_ap: Vec<f32>,
    /// Mean average precision over classes.
    pub map: f32,
}

/// The single-shot detector.
pub struct Detector {
    config: DetectorConfig,
    backbone: Sequential,
    head: Conv2d,
}

impl Detector {
    /// Build a detector; the backbone is a small VGG-style stack reduced to the
    /// requested grid resolution, optionally converted to quadratic layers.
    pub fn new(config: DetectorConfig) -> Self {
        assert!(config.image_size % config.grid == 0, "grid must divide image size");
        let mut rng = StdRng::seed_from_u64(config.seed);
        let backbone_cfg = Self::backbone_config(&config);
        let backbone = build_model(&backbone_cfg, &mut rng);
        let feat_channels = config.backbone_width * 4;
        // Per cell: (num_classes + 1) class logits + 4 box parameters.
        let head = Conv2d::new(feat_channels, config.num_classes + 1 + 4, 1, 1, 0, 1, true, &mut rng);
        Detector { config, backbone, head }
    }

    /// The backbone configuration used by this detector (before building).
    pub fn backbone_config(config: &DetectorConfig) -> ModelConfig {
        let w = config.backbone_width;
        // Downsample image_size -> grid with stride-2 convolutions.
        let mut size = config.image_size;
        let mut layers = vec![LayerSpec::conv3x3(w)];
        let mut width = w;
        while size > config.grid {
            width = (width * 2).min(w * 4);
            layers.push(LayerSpec::Conv {
                out_channels: width,
                kernel: 3,
                stride: 2,
                padding: 1,
                groups: 1,
                batch_norm: true,
                relu: true,
            });
            layers.push(LayerSpec::conv3x3(width));
            size /= 2;
        }
        // Make sure the final feature width is exactly 4*w for the head.
        layers.push(LayerSpec::Conv {
            out_channels: w * 4,
            kernel: 3,
            stride: 1,
            padding: 1,
            groups: 1,
            batch_norm: true,
            relu: true,
        });
        let cfg = ModelConfig::new("ssd-backbone", 3, config.image_size, config.num_classes, layers);
        match config.quadratic {
            Some(t) => AutoBuilder::new(t).convert(&cfg),
            None => cfg,
        }
    }

    /// The detector configuration.
    pub fn config(&self) -> &DetectorConfig {
        &self.config
    }

    /// Total parameter count (backbone + head).
    pub fn param_count(&self) -> usize {
        self.backbone.param_count() + self.head.param_count()
    }

    /// Copy backbone parameters from another detector (the "pre-trained"
    /// setting of Table 6: initialise from a classification-pretrained model).
    ///
    /// Both backbones must have identical architecture.
    pub fn load_backbone_from(&mut self, other: &Detector) {
        let src = other.backbone.params();
        let mut dst = self.backbone.params_mut();
        assert_eq!(src.len(), dst.len(), "backbone architectures differ");
        for (d, s) in dst.iter_mut().zip(src) {
            d.value.copy_from(&s.value).expect("matching parameter shapes");
        }
    }

    /// Mutable access to the backbone (e.g. to pre-train it on classification).
    pub fn backbone_mut(&mut self) -> &mut Sequential {
        &mut self.backbone
    }

    fn forward(&mut self, images: &Tensor, train: bool) -> Tensor {
        let feats = self.backbone.forward(images, train);
        self.head.forward(&feats, train)
    }

    /// Train the detector on a detection dataset.
    pub fn train(
        &mut self,
        data: &DetectionDataset,
        epochs: usize,
        batch_size: usize,
        lr: f32,
        seed: u64,
    ) -> Vec<f32> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut opt = Sgd::new(SgdConfig { lr, momentum: 0.9, weight_decay: 5e-4, nesterov: false });
        let ce = CrossEntropyLoss::new();
        let huber = SmoothL1Loss::new(1.0);
        let g = self.config.grid;
        let nc = self.config.num_classes;
        let mut losses = Vec::new();
        let mut indices: Vec<usize> = (0..data.len()).collect();
        for _ in 0..epochs {
            indices.shuffle(&mut rng);
            let mut epoch_loss = 0.0;
            let mut batches = 0;
            for chunk in indices.chunks(batch_size) {
                let images = data.image_batch(chunk);
                let preds = self.forward(&images, true);
                let b = chunk.len();
                // Build targets and the gradient tensor.
                let (cls_targets, box_targets, box_mask) = self.build_targets(data, chunk);
                // Classification: reshape preds [b, nc+1+4, g, g] -> cells as rows.
                let cls_logits = Self::gather_channels(&preds, 0, nc + 1); // [b*g*g, nc+1]
                let (cls_loss, cls_grad) = ce.compute(&cls_logits, &cls_targets);
                // Box regression only on matched cells.
                let box_preds = Self::gather_channels(&preds, nc + 1, 4); // [b*g*g, 4]
                let masked_preds = box_preds.mul(&box_mask).expect("mask");
                let masked_targets = box_targets.mul(&box_mask).expect("mask");
                let (box_loss, box_grad_raw) = huber.compute(&masked_preds, &masked_targets);
                let box_grad = box_grad_raw.mul(&box_mask).expect("mask");
                // Scatter gradients back into the prediction layout.
                let grad = Self::scatter_grads(&cls_grad, &box_grad, b, nc, g);
                let grad_feats = self.head.backward(&grad);
                self.backbone.backward(&grad_feats);
                {
                    let mut params = self.backbone.params_mut();
                    params.extend(self.head.params_mut());
                    opt.step(&mut params);
                    opt.zero_grad(&mut params);
                }
                epoch_loss += cls_loss + box_loss;
                batches += 1;
            }
            losses.push(epoch_loss / batches.max(1) as f32);
        }
        losses
    }

    /// Build per-cell class targets, box targets and a mask of matched cells.
    fn build_targets(&self, data: &DetectionDataset, indices: &[usize]) -> (Tensor, Tensor, Tensor) {
        let g = self.config.grid;
        let b = indices.len();
        let mut cls = vec![0.0f32; b * g * g];
        let mut boxes = vec![0.0f32; b * g * g * 4];
        let mut mask = vec![0.0f32; b * g * g * 4];
        for (bi, &si) in indices.iter().enumerate() {
            for gt in &data.scenes[si].boxes {
                let cx_cell = ((gt.cx * g as f32) as usize).min(g - 1);
                let cy_cell = ((gt.cy * g as f32) as usize).min(g - 1);
                let cell = bi * g * g + cy_cell * g + cx_cell;
                cls[cell] = (gt.class + 1) as f32; // 0 is background
                let base = cell * 4;
                boxes[base] = gt.cx;
                boxes[base + 1] = gt.cy;
                boxes[base + 2] = gt.w;
                boxes[base + 3] = gt.h;
                for k in 0..4 {
                    mask[base + k] = 1.0;
                }
            }
        }
        (
            Tensor::from_vec(cls, &[b * g * g]).expect("shape"),
            Tensor::from_vec(boxes, &[b * g * g, 4]).expect("shape"),
            Tensor::from_vec(mask, &[b * g * g, 4]).expect("shape"),
        )
    }

    /// Extract `count` channels starting at `start` from `[b, c, g, g]` into
    /// `[b*g*g, count]` rows.
    fn gather_channels(preds: &Tensor, start: usize, count: usize) -> Tensor {
        let (b, c, g, _) = (preds.shape()[0], preds.shape()[1], preds.shape()[2], preds.shape()[3]);
        let src = preds.as_slice();
        let mut out = vec![0.0f32; b * g * g * count];
        for bi in 0..b {
            for gy in 0..g {
                for gx in 0..g {
                    let row = (bi * g * g + gy * g + gx) * count;
                    for k in 0..count {
                        out[row + k] = src[((bi * c + start + k) * g + gy) * g + gx];
                    }
                }
            }
        }
        Tensor::from_vec(out, &[b * g * g, count]).expect("shape")
    }

    /// Inverse of [`Self::gather_channels`] for the two gradient blocks.
    fn scatter_grads(cls_grad: &Tensor, box_grad: &Tensor, b: usize, nc: usize, g: usize) -> Tensor {
        let c = nc + 1 + 4;
        let mut out = vec![0.0f32; b * c * g * g];
        for bi in 0..b {
            for gy in 0..g {
                for gx in 0..g {
                    let row = bi * g * g + gy * g + gx;
                    for k in 0..nc + 1 {
                        out[((bi * c + k) * g + gy) * g + gx] = cls_grad.at(&[row, k]);
                    }
                    for k in 0..4 {
                        out[((bi * c + nc + 1 + k) * g + gy) * g + gx] = box_grad.at(&[row, k]);
                    }
                }
            }
        }
        Tensor::from_vec(out, &[b, c, g, g]).expect("shape")
    }

    /// Run detection on a batch of scene indices, returning per-scene outputs
    /// after score thresholding and greedy non-maximum suppression.
    pub fn detect(
        &mut self,
        data: &DetectionDataset,
        indices: &[usize],
        score_threshold: f32,
    ) -> Vec<Vec<DetectionOutput>> {
        let g = self.config.grid;
        let nc = self.config.num_classes;
        let images = data.image_batch(indices);
        let preds = self.forward(&images, false);
        self.backbone.clear_cache();
        self.head.clear_cache();
        let cls = Self::gather_channels(&preds, 0, nc + 1).softmax_last_axis();
        let boxes = Self::gather_channels(&preds, nc + 1, 4);
        let mut results = Vec::with_capacity(indices.len());
        for bi in 0..indices.len() {
            let mut dets = Vec::new();
            for cell in 0..g * g {
                let row = bi * g * g + cell;
                // Best non-background class.
                let mut best_class = 0usize;
                let mut best_score = 0.0f32;
                for k in 1..nc + 1 {
                    let s = cls.at(&[row, k]);
                    if s > best_score {
                        best_score = s;
                        best_class = k - 1;
                    }
                }
                if best_score < score_threshold {
                    continue;
                }
                dets.push(DetectionOutput {
                    class: best_class,
                    score: best_score,
                    bbox: GtBox {
                        class: best_class,
                        cx: boxes.at(&[row, 0]).clamp(0.0, 1.0),
                        cy: boxes.at(&[row, 1]).clamp(0.0, 1.0),
                        w: boxes.at(&[row, 2]).clamp(0.01, 1.0),
                        h: boxes.at(&[row, 3]).clamp(0.01, 1.0),
                    },
                });
            }
            results.push(nms(dets, 0.5));
        }
        results
    }

    /// Evaluate mean average precision (IoU 0.5) over a dataset.
    pub fn evaluate_map(&mut self, data: &DetectionDataset, score_threshold: f32) -> MapReport {
        let indices: Vec<usize> = (0..data.len()).collect();
        let mut all_dets: Vec<Vec<DetectionOutput>> = Vec::with_capacity(data.len());
        for chunk in indices.chunks(16) {
            all_dets.extend(self.detect(data, chunk, score_threshold));
        }
        let mut per_class_ap = Vec::with_capacity(data.num_classes);
        for class in 0..data.num_classes {
            per_class_ap.push(average_precision(data, &all_dets, class, 0.5));
        }
        let map = per_class_ap.iter().sum::<f32>() / per_class_ap.len().max(1) as f32;
        MapReport { per_class_ap, map }
    }
}

/// Greedy non-maximum suppression within one image.
fn nms(mut dets: Vec<DetectionOutput>, iou_threshold: f32) -> Vec<DetectionOutput> {
    dets.sort_by(|a, b| b.score.partial_cmp(&a.score).unwrap_or(std::cmp::Ordering::Equal));
    let mut keep: Vec<DetectionOutput> = Vec::new();
    'outer: for d in dets {
        for k in &keep {
            if k.class == d.class && k.bbox.iou(&d.bbox) > iou_threshold {
                continue 'outer;
            }
        }
        keep.push(d);
    }
    keep
}

/// All-point-interpolated average precision for one class at the given IoU.
fn average_precision(data: &DetectionDataset, dets: &[Vec<DetectionOutput>], class: usize, iou: f32) -> f32 {
    // Collect (score, is_true_positive) over all scenes.
    let mut scored: Vec<(f32, bool)> = Vec::new();
    let mut total_gt = 0usize;
    for (scene, scene_dets) in data.scenes.iter().zip(dets) {
        let gts: Vec<&GtBox> = scene.boxes.iter().filter(|b| b.class == class).collect();
        total_gt += gts.len();
        let mut matched = vec![false; gts.len()];
        let mut class_dets: Vec<&DetectionOutput> = scene_dets.iter().filter(|d| d.class == class).collect();
        class_dets.sort_by(|a, b| b.score.partial_cmp(&a.score).unwrap_or(std::cmp::Ordering::Equal));
        for d in class_dets {
            let mut best = None;
            let mut best_iou = iou;
            for (i, gt) in gts.iter().enumerate() {
                if matched[i] {
                    continue;
                }
                let v = d.bbox.iou(gt);
                if v >= best_iou {
                    best_iou = v;
                    best = Some(i);
                }
            }
            match best {
                Some(i) => {
                    matched[i] = true;
                    scored.push((d.score, true));
                }
                None => scored.push((d.score, false)),
            }
        }
    }
    if total_gt == 0 {
        return 0.0;
    }
    scored.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap_or(std::cmp::Ordering::Equal));
    let mut tp = 0.0f32;
    let mut fp = 0.0f32;
    let mut points: Vec<(f32, f32)> = Vec::with_capacity(scored.len());
    for (_, is_tp) in scored {
        if is_tp {
            tp += 1.0;
        } else {
            fp += 1.0;
        }
        points.push((tp / total_gt as f32, tp / (tp + fp)));
    }
    // All-point interpolation: integrate precision envelope over recall.
    let mut ap = 0.0f32;
    let mut prev_recall = 0.0f32;
    for i in 0..points.len() {
        let max_prec = points[i..].iter().map(|p| p.1).fold(0.0f32, f32::max);
        ap += (points[i].0 - prev_recall).max(0.0) * max_prec;
        prev_recall = points[i].0;
    }
    ap
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_dataset(n: usize, seed: u64) -> DetectionDataset {
        DetectionDataset::generate(n, 3, 16, 1, seed)
    }

    fn tiny_config() -> DetectorConfig {
        DetectorConfig {
            num_classes: 3,
            image_size: 16,
            backbone_width: 4,
            grid: 4,
            quadratic: None,
            seed: 0,
        }
    }

    #[test]
    fn detector_builds_and_predicts_correct_shapes() {
        let mut det = Detector::new(tiny_config());
        assert!(det.param_count() > 0);
        assert_eq!(det.config().grid, 4);
        let data = tiny_dataset(4, 1);
        let outs = det.detect(&data, &[0, 1], 0.0);
        assert_eq!(outs.len(), 2);
        // With threshold 0 and NMS, at most grid*grid detections per image.
        assert!(outs[0].len() <= 16);
    }

    #[test]
    fn quadratic_backbone_variant_builds() {
        let cfg = DetectorConfig { quadratic: Some(NeuronType::Ours), ..tiny_config() };
        let det_q = Detector::new(cfg);
        let det_f = Detector::new(tiny_config());
        assert!(det_q.param_count() > det_f.param_count());
        let bcfg = Detector::backbone_config(&cfg);
        assert!(bcfg.is_quadratic());
    }

    #[test]
    fn training_reduces_loss_and_map_beats_untrained() {
        let train = tiny_dataset(40, 2);
        let test = tiny_dataset(16, 3);
        let mut det = Detector::new(tiny_config());
        let untrained_map = det.evaluate_map(&test, 0.3).map;
        let losses = det.train(&train, 6, 8, 0.05, 4);
        assert!(losses.len() == 6);
        assert!(losses.last().unwrap() < losses.first().unwrap(), "losses {:?}", losses);
        let trained = det.evaluate_map(&test, 0.3);
        assert_eq!(trained.per_class_ap.len(), 3);
        assert!(trained.map >= untrained_map, "trained {} vs untrained {}", trained.map, untrained_map);
        assert!(trained.map.is_finite() && trained.map >= 0.0 && trained.map <= 1.0);
    }

    #[test]
    fn backbone_transfer_copies_parameters() {
        let mut a = Detector::new(tiny_config());
        let b = Detector::new(DetectorConfig { seed: 9, ..tiny_config() });
        let before = a.backbone_mut().params()[0].value.clone();
        a.load_backbone_from(&b);
        let after = a.backbone_mut().params()[0].value.clone();
        assert!(before.max_abs_diff(&after).unwrap() > 0.0);
        assert!(after.allclose(&b.backbone.params()[0].value, 0.0));
    }

    #[test]
    fn nms_removes_overlapping_same_class_boxes() {
        let b = GtBox { class: 0, cx: 0.5, cy: 0.5, w: 0.2, h: 0.2 };
        let dets = vec![
            DetectionOutput { class: 0, score: 0.9, bbox: b },
            DetectionOutput { class: 0, score: 0.8, bbox: b },
            DetectionOutput { class: 1, score: 0.7, bbox: b },
        ];
        let kept = nms(dets, 0.5);
        assert_eq!(kept.len(), 2);
        assert_eq!(kept[0].score, 0.9);
        assert_eq!(kept[1].class, 1);
    }

    #[test]
    fn perfect_detections_give_map_one() {
        let data = tiny_dataset(5, 11);
        // Fabricate detections identical to the ground truth.
        let dets: Vec<Vec<DetectionOutput>> = data
            .scenes
            .iter()
            .map(|s| {
                s.boxes.iter().map(|b| DetectionOutput { class: b.class, score: 1.0, bbox: *b }).collect()
            })
            .collect();
        let mut sum = 0.0;
        let mut classes_with_gt = 0;
        for class in 0..data.num_classes {
            let has_gt = data.scenes.iter().any(|s| s.boxes.iter().any(|b| b.class == class));
            let ap = average_precision(&data, &dets, class, 0.5);
            if has_gt {
                assert!((ap - 1.0).abs() < 1e-6, "class {} ap {}", class, ap);
                sum += ap;
                classes_with_gt += 1;
            } else {
                assert_eq!(ap, 0.0);
            }
        }
        assert!(classes_with_gt > 0);
        assert!(sum > 0.0);
    }
}
