//! Socket-level load test of the `quadra-gateway` front-end.
//!
//! Unlike `serve_load` (which drives `quadra-serve` in process), this bench
//! measures the full network path: it spawns the `quadra-gateway` server
//! binary as a **separate process**, connects over real TCP, and drives it
//! with an open-loop arrival schedule. Two parts:
//!
//! 1. **Closed-loop RTT**: one connection, sequential calls — the
//!    per-request wire overhead (encode + syscalls + event loop + decode)
//!    stacked on the engine's batching latency.
//! 2. **Open-loop sweep**: per-connection arrival schedules at fixed
//!    offered rates. Latency is measured from each request's *scheduled*
//!    arrival time, not from when the socket write happened, so time spent
//!    blocked behind gateway backpressure counts against the tail
//!    (no coordinated omission). Backpressure frames count as shed.
//!
//! The server child is told to shut down by closing its stdin (its
//! documented supervision contract); its drain metrics land on stderr.
//!
//! Results are printed as tables and written to `BENCH_gateway.json`
//! (override with `QUADRA_BENCH_JSON`). Regenerate with
//! `cargo run -p quadra-bench --release --bin gateway_load`
//! (`QUADRA_SCALE=full` for the larger settings). The server binary is
//! found next to this one in the target directory, or via
//! `QUADRA_GATEWAY_BIN`.

use quadra_bench::{print_table, scale, Scale};
use quadra_gateway::{GatewayClient, GatewayError, Reply};
use quadra_serve::Priority;
use quadra_tensor::Tensor;
use std::io::BufRead;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

/// Input width of the MLP endpoint the server child is configured with.
const MLP_IN: usize = 64;
/// Output width of that endpoint.
const MLP_OUT: usize = 10;
/// Frame cap; matches the gateway default.
const MAX_FRAME: usize = 16 << 20;

/// Latency summary in milliseconds: `(p50, p95, p99)`.
#[derive(serde::Serialize, Debug, Clone, Copy)]
struct LatencyMs(f64, f64, f64);

/// One titled report section.
#[derive(serde::Serialize, Debug)]
struct Section<T> {
    title: String,
    records: Vec<T>,
}

#[derive(serde::Serialize, Debug)]
struct RttRecord {
    requests: u64,
    rtt_ms: LatencyMs,
    mean_rtt_ms: f64,
}

#[derive(serde::Serialize, Debug)]
struct OpenLoopRecord {
    connections: usize,
    offered_rps: f64,
    duration_s: f64,
    completed: u64,
    shed: u64,
    errors: u64,
    throughput_rps: f64,
    /// From scheduled arrival to reply, completed requests only.
    latency_ms: LatencyMs,
}

#[derive(serde::Serialize, Debug)]
struct GatewayReport {
    scale: String,
    endpoint: String,
    rtt: Section<RttRecord>,
    open_loop: Section<OpenLoopRecord>,
}

fn percentile(sorted_ms: &[f64], q: f64) -> f64 {
    if sorted_ms.is_empty() {
        return f64::NAN;
    }
    let rank = (q * (sorted_ms.len() - 1) as f64).round() as usize;
    sorted_ms[rank.min(sorted_ms.len() - 1)]
}

fn latency_summary(ms: &mut [f64]) -> LatencyMs {
    ms.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    LatencyMs(percentile(ms, 0.50), percentile(ms, 0.95), percentile(ms, 0.99))
}

/// Locate the `quadra-gateway` server binary: `QUADRA_GATEWAY_BIN` if set,
/// otherwise the sibling of this executable in the target directory.
fn gateway_binary() -> PathBuf {
    if let Ok(path) = std::env::var("QUADRA_GATEWAY_BIN") {
        return PathBuf::from(path);
    }
    let mut path = std::env::current_exe().expect("current_exe");
    path.pop();
    path.push(format!("quadra-gateway{}", std::env::consts::EXE_SUFFIX));
    path
}

/// The spawned server child plus the address it bound.
struct Server {
    child: Child,
    addr: String,
}

impl Server {
    fn spawn(workers: usize, max_batch: usize, queue: usize) -> Server {
        let bin = gateway_binary();
        if !bin.exists() {
            eprintln!(
                "gateway_load: server binary not found at {} — build it first\n\
                 (cargo build --release -p quadra-gateway) or set QUADRA_GATEWAY_BIN",
                bin.display()
            );
            std::process::exit(2);
        }
        let mut child = Command::new(&bin)
            .args(["--listen", "127.0.0.1:0"])
            .args(["--workers", &workers.to_string()])
            .args(["--max-batch", &max_batch.to_string()])
            .args(["--queue", &queue.to_string()])
            .args(["--endpoint", &format!("mlp=mlp:{MLP_IN}x32x{MLP_OUT}")])
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit())
            .spawn()
            .expect("spawning quadra-gateway");

        // The child prints exactly one stdout line once it is listening.
        let stdout = child.stdout.take().expect("child stdout");
        let mut line = String::new();
        std::io::BufReader::new(stdout).read_line(&mut line).expect("reading listen line");
        let addr = line
            .trim()
            .strip_prefix("quadra-gateway listening on ")
            .unwrap_or_else(|| panic!("unexpected server banner: {line:?}"))
            .to_string();
        Server { child, addr }
    }

    /// Close the child's stdin (its shutdown signal) and wait for the drain.
    fn shutdown(mut self) {
        drop(self.child.stdin.take());
        let status = self.child.wait().expect("waiting for quadra-gateway");
        assert!(status.success(), "quadra-gateway exited with {status}");
    }
}

fn connect(addr: &str) -> GatewayClient {
    GatewayClient::connect(addr, MAX_FRAME).expect("connecting to gateway")
}

/// Closed-loop: sequential request/response round trips on one connection.
fn run_rtt(addr: &str, requests: u64) -> RttRecord {
    let mut client = connect(addr);
    let x = Tensor::ones(&[1, MLP_IN]);
    let mut rtts_ms = Vec::with_capacity(requests as usize);
    for _ in 0..requests {
        let t0 = Instant::now();
        let reply = client.call("mlp", x.clone(), Priority::Interactive, None, None).expect("rtt call");
        match reply {
            Reply::Response(frame) => assert_eq!(frame.output.shape(), &[1, MLP_OUT]),
            other => panic!("unexpected reply during RTT phase: {other:?}"),
        }
        rtts_ms.push(t0.elapsed().as_secs_f64() * 1e3);
    }
    let mean = rtts_ms.iter().sum::<f64>() / rtts_ms.len().max(1) as f64;
    RttRecord { requests, rtt_ms: latency_summary(&mut rtts_ms), mean_rtt_ms: mean }
}

/// What one open-loop connection thread observed.
struct ConnOutcome {
    latencies_ms: Vec<f64>,
    shed: u64,
    errors: u64,
}

/// Drive one connection with `count` arrivals spaced `interval` apart.
///
/// Between arrivals the thread polls for replies with a short read timeout;
/// after the last send it drains until every correlation id settles (or the
/// connection dies). Latency is reply time minus *scheduled* arrival.
fn run_conn(addr: &str, count: u64, interval: Duration, start: Instant) -> ConnOutcome {
    let mut client = connect(addr);
    client.set_read_timeout(Some(Duration::from_millis(1))).expect("read timeout");
    let x = Tensor::ones(&[1, MLP_IN]);

    let mut scheduled: std::collections::HashMap<u64, Instant> =
        std::collections::HashMap::with_capacity(count as usize);
    let mut outcome = ConnOutcome { latencies_ms: Vec::with_capacity(count as usize), shed: 0, errors: 0 };
    let mut sent = 0u64;

    loop {
        let all_sent = sent == count;
        if all_sent && scheduled.is_empty() {
            break;
        }
        let due = start + interval.mul_f64(sent as f64);
        if !all_sent && Instant::now() >= due {
            match client.send("mlp", x.clone(), Priority::Interactive, None, None) {
                Ok(corr) => {
                    scheduled.insert(corr, due);
                }
                Err(_) => {
                    outcome.errors += count - sent;
                    return outcome;
                }
            }
            sent += 1;
            continue;
        }
        match client.recv() {
            Ok(reply) => {
                let Some(corr) = reply.correlation_id() else { continue };
                let Some(arrival) = scheduled.remove(&corr) else { continue };
                match reply {
                    Reply::Response(_) => outcome.latencies_ms.push(arrival.elapsed().as_secs_f64() * 1e3),
                    Reply::Backpressure(_) => outcome.shed += 1,
                    _ => outcome.errors += 1,
                }
            }
            Err(GatewayError::Io(e))
                if e.kind() == std::io::ErrorKind::WouldBlock || e.kind() == std::io::ErrorKind::TimedOut => {
            }
            Err(_) => {
                outcome.errors += scheduled.len() as u64 + (count - sent);
                return outcome;
            }
        }
    }
    outcome
}

/// Open-loop phase: `connections` threads, aggregate offered rate
/// `offered_rps`, running for roughly `duration`.
fn run_open_loop(addr: &str, connections: usize, offered_rps: f64, duration: Duration) -> OpenLoopRecord {
    let per_conn_rate = offered_rps / connections as f64;
    let interval = Duration::from_secs_f64(1.0 / per_conn_rate);
    let count = (per_conn_rate * duration.as_secs_f64()).round().max(1.0) as u64;

    let start = Instant::now();
    let outcomes: Vec<ConnOutcome> = std::thread::scope(|scope| {
        let handles: Vec<_> =
            (0..connections).map(|_| scope.spawn(|| run_conn(addr, count, interval, start))).collect();
        handles.into_iter().map(|h| h.join().expect("conn thread")).collect()
    });
    let elapsed = start.elapsed();

    let mut latencies: Vec<f64> = Vec::new();
    let mut shed = 0u64;
    let mut errors = 0u64;
    for mut outcome in outcomes {
        latencies.append(&mut outcome.latencies_ms);
        shed += outcome.shed;
        errors += outcome.errors;
    }
    let completed = latencies.len() as u64;
    OpenLoopRecord {
        connections,
        offered_rps,
        duration_s: elapsed.as_secs_f64(),
        completed,
        shed,
        errors,
        throughput_rps: completed as f64 / elapsed.as_secs_f64(),
        latency_ms: latency_summary(&mut latencies),
    }
}

fn main() {
    let run_scale = scale();
    let (rtt_requests, connections, rates, duration) = match run_scale {
        Scale::Quick => (400u64, 4usize, vec![500.0, 2000.0], Duration::from_secs(2)),
        Scale::Full => (2000, 8, vec![1000.0, 4000.0, 12000.0], Duration::from_secs(5)),
    };

    let server = Server::spawn(2, 8, 256);
    eprintln!("gateway_load: server at {}", server.addr);

    // Warm the endpoint (worker threads, allocator, first batches) before
    // anything is timed.
    let _ = run_rtt(&server.addr, 50);

    let rtt = run_rtt(&server.addr, rtt_requests);
    let open_loop: Vec<OpenLoopRecord> =
        rates.iter().map(|&rps| run_open_loop(&server.addr, connections, rps, duration)).collect();

    server.shutdown();

    print_table(
        "Gateway closed-loop RTT (1 connection, sequential)",
        &["requests", "p50 ms", "p95 ms", "p99 ms", "mean ms"],
        &[vec![
            rtt.requests.to_string(),
            format!("{:.3}", rtt.rtt_ms.0),
            format!("{:.3}", rtt.rtt_ms.1),
            format!("{:.3}", rtt.rtt_ms.2),
            format!("{:.3}", rtt.mean_rtt_ms),
        ]],
    );
    print_table(
        "Gateway open-loop sweep (scheduled arrivals, no coordinated omission)",
        &["conns", "offered rps", "completed", "shed", "errors", "rps", "p50 ms", "p95 ms", "p99 ms"],
        &open_loop
            .iter()
            .map(|r| {
                vec![
                    r.connections.to_string(),
                    format!("{:.0}", r.offered_rps),
                    r.completed.to_string(),
                    r.shed.to_string(),
                    r.errors.to_string(),
                    format!("{:.0}", r.throughput_rps),
                    format!("{:.3}", r.latency_ms.0),
                    format!("{:.3}", r.latency_ms.1),
                    format!("{:.3}", r.latency_ms.2),
                ]
            })
            .collect::<Vec<_>>(),
    );

    let report = GatewayReport {
        scale: format!("{run_scale:?}"),
        endpoint: format!("mlp:{MLP_IN}x32x{MLP_OUT}"),
        rtt: Section { title: "closed_loop_rtt".to_string(), records: vec![rtt] },
        open_loop: Section { title: "open_loop_sweep".to_string(), records: open_loop },
    };
    let path = std::env::var("QUADRA_BENCH_JSON").unwrap_or_else(|_| "BENCH_gateway.json".to_string());
    let json = serde_json::to_string_pretty(&report).expect("serializing report");
    std::fs::write(&path, json + "\n").expect("writing report");
    println!("\nreport written to {path}");
}
