//! One named model endpoint: its admission queue, hot-reload slot, metrics
//! hub, and the arrival/service statistics behind the adaptive wait budget.

use crate::admission::{AdmissionQueue, AdmitRejection};
use crate::metrics::{MetricsHub, ServeMetrics};
use crate::request::{PendingInfer, PendingResponse, Priority, ServeConfig, ServeError};
use crate::worker::ReloadSlot;
use quadra_tensor::Tensor;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Mutex};
use std::time::{Duration, Instant};

/// EWMA smoothing: `new = (3 * old + sample) / 4`.
fn ewma_update(cell: &AtomicU64, sample_us: u64) {
    let old = cell.load(Ordering::Relaxed);
    let next = if old == 0 { sample_us.max(1) } else { (3 * old + sample_us) / 4 };
    cell.store(next.max(1), Ordering::Relaxed);
}

/// Shared state of one model endpoint; the admission layer, batcher thread,
/// worker pool, and the router front-end all hold an `Arc` of this.
pub(crate) struct EndpointShared {
    pub name: String,
    pub config: ServeConfig,
    pub queue: AdmissionQueue,
    pub reload: ReloadSlot,
    pub metrics: MetricsHub,
    /// EWMA of request inter-arrival time in µs (0 = no data yet).
    ewma_interarrival_us: AtomicU64,
    last_arrival: Mutex<Option<Instant>>,
    /// EWMA of batch service (forward-pass) time in µs, fed by workers.
    ewma_batch_us: AtomicU64,
    /// Gauge: the wait budget the batcher most recently computed, in µs.
    wait_budget_us: AtomicU64,
}

impl EndpointShared {
    pub fn new(name: &str, config: ServeConfig) -> Self {
        EndpointShared {
            name: name.to_string(),
            config,
            queue: AdmissionQueue::new(config.admission.queue_capacity),
            reload: ReloadSlot::new(),
            metrics: MetricsHub::new(config.policy.max_batch_size),
            ewma_interarrival_us: AtomicU64::new(0),
            last_arrival: Mutex::new(None),
            ewma_batch_us: AtomicU64::new(0),
            wait_budget_us: AtomicU64::new(config.policy.max_wait.as_micros() as u64),
        }
    }

    /// Validate and admit one request; returns the pending-response handle or
    /// the admission error (bad input, overload shed, shutting down).
    pub fn submit(&self, id: u64, input: Tensor, priority: Priority) -> Result<PendingResponse, ServeError> {
        if input.ndim() < 2 {
            return Err(ServeError::BadInput(format!(
                "input must have a leading sample axis (got {}-d; wrap a single sample as [1, ...])",
                input.ndim()
            )));
        }
        let samples = input.shape()[0];
        if samples == 0 {
            return Err(ServeError::BadInput("input holds zero samples".into()));
        }
        self.record_arrival();
        let (reply, rx) = mpsc::channel();
        let request = PendingInfer { id, input, samples, priority, submitted_at: Instant::now(), reply };
        match self.queue.try_admit(request) {
            Ok(()) => Ok(PendingResponse { id, rx }),
            Err((_, AdmitRejection::Closed)) => Err(ServeError::ShuttingDown),
            Err((_, AdmitRejection::Full)) => {
                self.metrics.record_shed(priority);
                Err(ServeError::Overloaded { retry_after: self.retry_after() })
            }
        }
    }

    fn record_arrival(&self) {
        let now = Instant::now();
        let mut last = self.last_arrival.lock().unwrap();
        if let Some(prev) = last.replace(now) {
            let dt_us = now.duration_since(prev).as_micros().min(u64::MAX as u128) as u64;
            ewma_update(&self.ewma_interarrival_us, dt_us);
        }
    }

    /// Workers report each batch's forward-pass duration here.
    pub fn record_batch_service(&self, service: Duration) {
        let us = service.as_micros().min(u64::MAX as u128) as u64;
        ewma_update(&self.ewma_batch_us, us);
    }

    /// The wait budget for a batch currently holding `samples_in_batch`
    /// samples: `max_wait` under the static policy; under the adaptive policy
    /// the time the measured arrival rate needs to fill the batch, capped by
    /// twice the measured batch service time (waiting past that trades more
    /// latency than batching saves) and by `max_wait`, floored at
    /// `max_wait / 16` so in-flight bursts still coalesce.
    pub fn wait_budget(&self, samples_in_batch: usize) -> Duration {
        let policy = &self.config.policy;
        let max = policy.max_wait;
        if !policy.adaptive_wait {
            return max;
        }
        let inter_us = self.ewma_interarrival_us.load(Ordering::Relaxed);
        let budget = if inter_us == 0 {
            max // no arrival data yet: behave like the static policy
        } else {
            let remaining = policy.max_batch_size.saturating_sub(samples_in_batch).max(1) as u64;
            let mut budget_us = inter_us.saturating_mul(remaining);
            let svc_us = self.ewma_batch_us.load(Ordering::Relaxed);
            if svc_us > 0 {
                budget_us = budget_us.min(2 * svc_us);
            }
            // `min(max)` keeps floor ≤ max even for sub-microsecond caps
            // (Duration::clamp panics when min > max).
            let floor = (max / 16).max(Duration::from_micros(1)).min(max);
            Duration::from_micros(budget_us).clamp(floor, max)
        };
        self.wait_budget_us.store(budget.as_micros() as u64, Ordering::Relaxed);
        budget
    }

    /// Estimate of when the current backlog will have drained: queued batches
    /// ahead, divided over the worker pool, at the measured batch service
    /// time (falling back to `max_wait` before any batch has completed).
    pub fn retry_after(&self) -> Duration {
        let policy = &self.config.policy;
        let batches_queued = self.queue.depth().div_ceil(policy.max_batch_size).max(1) as u32;
        let waves = batches_queued.div_ceil(self.config.workers.max(1) as u32).max(1);
        let svc_us = self.ewma_batch_us.load(Ordering::Relaxed);
        let per_batch = if svc_us > 0 {
            Duration::from_micros(svc_us)
        } else {
            policy.max_wait.max(Duration::from_millis(1))
        };
        per_batch * waves
    }

    /// Point-in-time snapshot of this endpoint's serving statistics.
    pub fn snapshot(&self) -> ServeMetrics {
        self.metrics.snapshot(
            &self.name,
            self.reload.version(),
            self.queue.depth(),
            Duration::from_micros(self.wait_budget_us.load(Ordering::Relaxed)),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::{AdmissionPolicy, BatchPolicy};

    fn endpoint(adaptive: bool) -> EndpointShared {
        EndpointShared::new(
            "test",
            ServeConfig {
                workers: 1,
                policy: BatchPolicy {
                    max_batch_size: 8,
                    max_wait: Duration::from_millis(16),
                    adaptive_wait: adaptive,
                    pad_mixed_spatial: false,
                },
                admission: AdmissionPolicy::default(),
            },
        )
    }

    #[test]
    fn static_policy_returns_max_wait() {
        let ep = endpoint(false);
        ep.record_batch_service(Duration::from_micros(100));
        assert_eq!(ep.wait_budget(0), Duration::from_millis(16));
    }

    #[test]
    fn adaptive_budget_tracks_arrivals_and_service_time() {
        let ep = endpoint(true);
        // Cold start: no arrival data → fall back to the cap.
        assert_eq!(ep.wait_budget(0), Duration::from_millis(16));
        // Feed a steady ~200 µs inter-arrival EWMA and a 500 µs service EWMA.
        for _ in 0..32 {
            ewma_update(&ep.ewma_interarrival_us, 200);
            ewma_update(&ep.ewma_batch_us, 500);
        }
        let budget = ep.wait_budget(0);
        // Fill estimate: 8 × 200 µs = 1.6 ms, capped at 2 × 500 µs = 1 ms.
        assert_eq!(budget, Duration::from_micros(1000));
        // A nearly full batch needs only one more sample: floored at max/16.
        let near_full = ep.wait_budget(7);
        assert_eq!(near_full, Duration::from_millis(1));
        // Budget gauge reflects the last computation.
        assert_eq!(ep.snapshot().wait_budget_ms, 1.0);
    }

    #[test]
    fn zero_max_wait_dispatches_immediately_without_panicking() {
        // "Dispatch as soon as possible" was a legal setting before the
        // adaptive policy existed; the clamp must not panic on max_wait
        // below the 1 µs floor once arrival data exists.
        let ep = EndpointShared::new(
            "zero",
            ServeConfig {
                workers: 1,
                policy: BatchPolicy {
                    max_batch_size: 8,
                    max_wait: Duration::ZERO,
                    adaptive_wait: true,
                    pad_mixed_spatial: false,
                },
                admission: AdmissionPolicy::default(),
            },
        );
        for _ in 0..4 {
            ewma_update(&ep.ewma_interarrival_us, 200);
            ewma_update(&ep.ewma_batch_us, 500);
        }
        assert_eq!(ep.wait_budget(0), Duration::ZERO);
    }

    #[test]
    fn adaptive_budget_never_exceeds_cap() {
        let ep = endpoint(true);
        for _ in 0..32 {
            ewma_update(&ep.ewma_interarrival_us, 1_000_000); // 1 s between arrivals
            ewma_update(&ep.ewma_batch_us, 1_000_000);
        }
        assert_eq!(ep.wait_budget(0), Duration::from_millis(16));
    }

    #[test]
    fn retry_after_scales_with_backlog() {
        let ep = endpoint(true);
        for _ in 0..32 {
            ewma_update(&ep.ewma_batch_us, 10_000); // 10 ms per batch
        }
        let empty = ep.retry_after();
        assert_eq!(empty, Duration::from_millis(10));
    }
}
