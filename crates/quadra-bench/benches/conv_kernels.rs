//! Criterion benchmark of the tensor substrate's convolution and matmul
//! kernels (sanity check that the substrate is not the bottleneck story).

use criterion::{criterion_group, criterion_main, Criterion};
use quadra_tensor::{Conv2dParams, Tensor};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("tensor_kernels");
    group.sample_size(20);
    let mut rng = StdRng::seed_from_u64(0);
    let x = Tensor::randn(&[4, 16, 16, 16], 0.0, 1.0, &mut rng);
    let w = Tensor::randn(&[16, 16, 3, 3], 0.0, 0.2, &mut rng);
    let p = Conv2dParams::new(1, 1, 1);
    group.bench_function("conv2d_3x3", |b| b.iter(|| std::hint::black_box(x.conv2d(&w, None, p).unwrap())));

    let dw = Tensor::randn(&[16, 1, 3, 3], 0.0, 0.2, &mut rng);
    let pd = Conv2dParams::new(1, 1, 16);
    group.bench_function("depthwise_conv2d_3x3", |b| {
        b.iter(|| std::hint::black_box(x.conv2d(&dw, None, pd).unwrap()))
    });

    let a = Tensor::randn(&[128, 128], 0.0, 1.0, &mut rng);
    let bm = Tensor::randn(&[128, 128], 0.0, 1.0, &mut rng);
    group.bench_function("matmul_128", |b| b.iter(|| std::hint::black_box(a.matmul(&bm).unwrap())));
    group.bench_function("matmul_nt_128", |b| b.iter(|| std::hint::black_box(a.matmul_nt(&bm).unwrap())));
    group.bench_function("matmul_tn_128", |b| b.iter(|| std::hint::black_box(a.matmul_tn(&bm).unwrap())));

    // Backward kernels — the transpose-free gemm_tn / gemm_nt hot paths.
    let go = x.conv2d(&w, None, p).unwrap();
    group.bench_function("conv2d_backward_input_3x3", |b| {
        b.iter(|| std::hint::black_box(Tensor::conv2d_backward_input(&go, &w, x.shape(), p).unwrap()))
    });
    group.bench_function("conv2d_backward_weight_3x3", |b| {
        b.iter(|| std::hint::black_box(Tensor::conv2d_backward_weight(&go, &x, w.shape(), p).unwrap()))
    });
    let god = x.conv2d(&dw, None, pd).unwrap();
    group.bench_function("depthwise_backward_weight_3x3", |b| {
        b.iter(|| std::hint::black_box(Tensor::conv2d_backward_weight(&god, &x, dw.shape(), pd).unwrap()))
    });
    group.finish();
}

criterion_group!(benches, bench_kernels);
criterion_main!(benches);
