//! The request lifecycle API: the typed [`Request`] builder, the
//! [`ResponseHandle`] a submission returns, and the policy knobs that control
//! admission, batch formation, and fair sharing.

use quadra_tensor::Tensor;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

/// Scheduling class of a request inside a model's admission queue.
///
/// Admission keeps one bounded queue per class and the scheduler seeds batches
/// from [`Priority::Interactive`] first, so latency-sensitive traffic is never
/// starved by throughput-oriented [`Priority::Batch`] work. Each class sheds
/// independently when its queue fills. An aging credit
/// ([`AdmissionPolicy::batch_aging`]) guarantees the batch class a minimum
/// share under sustained interactive overload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Priority {
    /// Latency-sensitive traffic, always dequeued first (the default).
    #[default]
    Interactive,
    /// Throughput-oriented traffic that yields to interactive requests.
    Batch,
}

impl Priority {
    /// Number of priority classes.
    pub const COUNT: usize = 2;

    /// Stable index of the class (used by per-class metrics arrays).
    pub(crate) fn index(self) -> usize {
        match self {
            Priority::Interactive => 0,
            Priority::Batch => 1,
        }
    }

    /// Human-readable class name.
    pub fn label(self) -> &'static str {
        match self {
            Priority::Interactive => "interactive",
            Priority::Batch => "batch",
        }
    }
}

/// Errors surfaced to serving clients.
///
/// Every variant carries an **explicit, stable numeric discriminant** (the
/// `#[repr(u16)]` tag) because the gateway's binary wire protocol transmits
/// [`ServeError::code`] in error frames: adding a variant without a code
/// would silently renumber the wire encoding. New variants must append a new
/// discriminant, never renumber or reuse one; the round-trip test in this
/// module pins the mapping.
#[derive(Debug, Clone, PartialEq, Eq)]
#[repr(u16)]
pub enum ServeError {
    /// The server is shutting down (or has shut down) and no longer accepts
    /// or answers requests.
    ShuttingDown = 1,
    /// The request input was rejected before it reached the admission queue.
    BadInput(String) = 2,
    /// The router has no endpoint registered under the requested model name.
    UnknownModel(String) = 3,
    /// The model's admission queue for the request's priority class is full;
    /// the request was shed instead of queueing unboundedly. `retry_after`
    /// estimates when the backlog will have drained.
    Overloaded {
        /// Estimated time until the queue has drained enough to admit again.
        retry_after: Duration,
    } = 4,
    /// The request's [`Request::deadline`] passed before a worker dispatched
    /// it; it was shed from the queue instead of wasting a batch slot on an
    /// answer nobody is waiting for.
    DeadlineExceeded = 5,
    /// The request was cancelled via [`ResponseHandle::cancel`] while it was
    /// still queued. A request that already rode into a batch completes
    /// normally — cancellation is a dispatch-time shed, never a mid-batch
    /// abort.
    Cancelled = 6,
    /// A checkpoint offered for hot-reload does not fit the served model.
    InvalidState(String) = 7,
    /// The model panicked while executing the batch containing this request.
    WorkerFailed(String) = 8,
    /// [`ResponseHandle::wait_timeout`] expired before the response arrived.
    Timeout = 9,
}

impl ServeError {
    /// The variant's stable numeric code — the `#[repr(u16)]` discriminant,
    /// transmitted verbatim in gateway error frames. Code 0 is reserved for
    /// protocol-level errors that are not `ServeError`s.
    #[must_use]
    pub fn code(&self) -> u16 {
        match self {
            ServeError::ShuttingDown => 1,
            ServeError::BadInput(_) => 2,
            ServeError::UnknownModel(_) => 3,
            ServeError::Overloaded { .. } => 4,
            ServeError::DeadlineExceeded => 5,
            ServeError::Cancelled => 6,
            ServeError::InvalidState(_) => 7,
            ServeError::WorkerFailed(_) => 8,
            ServeError::Timeout => 9,
        }
    }

    /// Reconstruct a variant from its wire code, re-attaching the payload
    /// fields a decoded error frame carries separately (`message` for the
    /// `String` variants, `retry_after` for [`ServeError::Overloaded`]).
    /// Returns `None` for codes this build does not know — forward
    /// compatibility is the caller's problem, not a panic.
    #[must_use]
    pub fn from_code(code: u16, message: &str, retry_after: Duration) -> Option<ServeError> {
        match code {
            1 => Some(ServeError::ShuttingDown),
            2 => Some(ServeError::BadInput(message.to_string())),
            3 => Some(ServeError::UnknownModel(message.to_string())),
            4 => Some(ServeError::Overloaded { retry_after }),
            5 => Some(ServeError::DeadlineExceeded),
            6 => Some(ServeError::Cancelled),
            7 => Some(ServeError::InvalidState(message.to_string())),
            8 => Some(ServeError::WorkerFailed(message.to_string())),
            9 => Some(ServeError::Timeout),
            _ => None,
        }
    }
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::ShuttingDown => write!(f, "server is shutting down"),
            ServeError::BadInput(m) => write!(f, "bad input: {}", m),
            ServeError::UnknownModel(m) => write!(f, "no endpoint serves model `{}`", m),
            ServeError::Overloaded { retry_after } => {
                write!(f, "overloaded: request shed, retry after {:.1} ms", retry_after.as_secs_f64() * 1e3)
            }
            ServeError::DeadlineExceeded => write!(f, "deadline exceeded before dispatch; request shed"),
            ServeError::Cancelled => write!(f, "request cancelled while queued"),
            ServeError::InvalidState(m) => write!(f, "invalid checkpoint for hot-reload: {}", m),
            ServeError::WorkerFailed(m) => write!(f, "worker failed: {}", m),
            ServeError::Timeout => write!(f, "timed out waiting for response"),
        }
    }
}

impl std::error::Error for ServeError {}

/// When a worker closes a batch it is forming and executes it.
///
/// A batch is dispatched as soon as it holds `max_batch_size` samples or when
/// its wait budget expires, whichever comes first. The budget is `max_wait`
/// exactly when `adaptive_wait` is off; with `adaptive_wait` on (the default)
/// the scheduler picks the budget automatically from the model's measured
/// arrival rate and batch service time, using `max_wait` as the cap. A single
/// request carrying more than `max_batch_size` samples is not rejected — it
/// is dispatched immediately as an oversized batch of its own.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchPolicy {
    /// Target number of *samples* (not requests) per coalesced batch.
    pub max_batch_size: usize,
    /// Upper bound on the time the first request of a batch waits for company
    /// (the exact wait when `adaptive_wait` is off).
    pub max_wait: Duration,
    /// Pick the wait budget automatically: wait roughly as long as the EWMA
    /// inter-arrival time says is needed to fill the batch, but never longer
    /// than twice the EWMA batch service time (past that point batching no
    /// longer amortises) nor `max_wait`, and never less than `max_wait / 16`
    /// (so bursts in flight still coalesce).
    pub adaptive_wait: bool,
    /// Allow NCHW requests with different H×W (same channel count) to share a
    /// batch by zero-padding every sample to the largest H and W present.
    ///
    /// Off by default: padding changes what the model sees (a pooling layer
    /// averages over the padded zeros, a `Flatten`+`Linear` head panics on the
    /// changed feature count), so a request's prediction could depend on the
    /// traffic it happened to ride with. Leave this off to keep served
    /// predictions bitwise-identical to direct `forward` calls; turn it on
    /// only for fully convolutional models where approximate mixed-size
    /// pooling is acceptable.
    pub pad_mixed_spatial: bool,
}

impl Default for BatchPolicy {
    fn default() -> Self {
        BatchPolicy {
            max_batch_size: 16,
            max_wait: Duration::from_millis(2),
            adaptive_wait: true,
            pad_mixed_spatial: false,
        }
    }
}

/// Admission-control policy of one model endpoint: how much work may queue
/// before further requests are shed with [`ServeError::Overloaded`], and how
/// strictly the [`Priority::Interactive`] class dominates the queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdmissionPolicy {
    /// Maximum queued **samples** per priority class. `None` restores the
    /// pre-router unbounded FIFO (useful only as an overload baseline: under
    /// sustained offered load above capacity an unbounded queue grows — and
    /// with it every request's latency — without bound).
    pub queue_capacity: Option<usize>,
    /// Aging credit for the [`Priority::Batch`] class: after this many
    /// consecutive interactive-seeded batches while batch-class work sat
    /// queued, the next batch is seeded from the batch class instead, so
    /// sustained interactive overload can never starve it completely (it is
    /// guaranteed at least `1 / (batch_aging + 1)` of dispatches). `0`
    /// restores strict priority (the batch class drains only in gaps).
    pub batch_aging: u32,
}

impl Default for AdmissionPolicy {
    fn default() -> Self {
        AdmissionPolicy { queue_capacity: Some(1024), batch_aging: 8 }
    }
}

/// Configuration of one model endpoint (and of the single-model
/// [`InferenceServer`](crate::InferenceServer) convenience wrapper).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeConfig {
    /// Number of model replicas, each on its own dedicated worker thread.
    pub workers: usize,
    /// Batch-formation policy.
    pub policy: BatchPolicy,
    /// Admission-control policy (bounded queues + load shedding + aging).
    pub admission: AdmissionPolicy,
    /// Fair-share weight of this endpoint in the fleet scheduler: under
    /// contention each endpoint is granted service time proportional to its
    /// weight (deficit round robin), so a saturated light model cannot crowd
    /// a heavy one off the CPU. Irrelevant for a single-endpoint server.
    pub weight: u32,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 2,
            policy: BatchPolicy::default(),
            admission: AdmissionPolicy::default(),
            weight: 1,
        }
    }
}

impl ServeConfig {
    /// Validate the configuration at server start.
    pub(crate) fn validate(&self) -> Result<(), ServeError> {
        if self.workers == 0 {
            return Err(ServeError::BadInput("need at least one worker".into()));
        }
        if self.policy.max_batch_size == 0 {
            return Err(ServeError::BadInput("max_batch_size must be at least 1".into()));
        }
        if self.admission.queue_capacity == Some(0) {
            return Err(ServeError::BadInput("queue_capacity must be at least 1 sample (or None)".into()));
        }
        if self.weight == 0 {
            return Err(ServeError::BadInput("fair-share weight must be at least 1".into()));
        }
        Ok(())
    }
}

/// How a [`Request`] deadline was specified (resolved to an [`Instant`] at
/// submission).
#[derive(Debug, Clone, Copy)]
enum DeadlineSpec {
    Within(Duration),
    At(Instant),
}

/// A typed inference request under construction: the input tensor plus the
/// lifecycle knobs — priority class, deadline, and a caller tag echoed back in
/// the response.
///
/// ```
/// # use quadra_nn::{Layer, Linear, Sequential};
/// # use quadra_serve::{InferenceServer, Priority, Request, ServeConfig};
/// # use quadra_tensor::Tensor;
/// # use rand::rngs::StdRng;
/// # use rand::SeedableRng;
/// # use std::time::Duration;
/// # let server = InferenceServer::start(ServeConfig::default(), || {
/// #     let mut rng = StdRng::seed_from_u64(0);
/// #     Box::new(Sequential::new(vec![Box::new(Linear::new(4, 3, true, &mut rng)) as Box<dyn Layer>]))
/// # })
/// # .unwrap();
/// # let client = server.client();
/// # let image = Tensor::ones(&[1, 4]);
/// let handle = client.send(
///     Request::new(image)
///         .priority(Priority::Interactive)
///         .deadline(Duration::from_secs(5))
///         .tag("user-42"),
/// )?;
/// let response = handle.wait()?;
/// assert_eq!(response.tag.as_deref(), Some("user-42"));
/// # Ok::<(), quadra_serve::ServeError>(())
/// ```
#[derive(Debug, Clone)]
#[must_use = "a request does nothing until it is sent"]
pub struct Request {
    pub(crate) input: Tensor,
    pub(crate) priority: Priority,
    deadline: Option<DeadlineSpec>,
    pub(crate) tag: Option<String>,
}

impl Request {
    /// Start building a request around `input`. Axis 0 is always the sample
    /// axis: submit `[n, features]` rows or `[n, C, H, W]` images; the
    /// response's output keeps the same leading axis. Defaults: priority
    /// [`Priority::Interactive`], no deadline, no tag.
    pub fn new(input: Tensor) -> Self {
        Request { input, priority: Priority::Interactive, deadline: None, tag: None }
    }

    /// Set the scheduling class.
    pub fn priority(mut self, priority: Priority) -> Self {
        self.priority = priority;
        self
    }

    /// Give the request a deadline relative to its submission: if no worker
    /// has dispatched it `within` this duration of `send`, it is shed from
    /// the queue with [`ServeError::DeadlineExceeded`] instead of occupying a
    /// batch slot for an answer nobody is waiting for. Requests already in a
    /// batch always complete.
    pub fn deadline(mut self, within: Duration) -> Self {
        self.deadline = Some(DeadlineSpec::Within(within));
        self
    }

    /// Like [`Request::deadline`], but at an absolute instant.
    pub fn deadline_at(mut self, at: Instant) -> Self {
        self.deadline = Some(DeadlineSpec::At(at));
        self
    }

    /// Attach an opaque caller tag, echoed back in
    /// [`InferResponse::tag`] — useful for correlating responses with
    /// upstream sessions without an external id map.
    pub fn tag(mut self, tag: impl Into<String>) -> Self {
        self.tag = Some(tag.into());
        self
    }

    /// Resolve the deadline against the submission instant.
    pub(crate) fn resolve_deadline(&self, submitted_at: Instant) -> Option<Instant> {
        self.deadline.map(|d| match d {
            DeadlineSpec::Within(within) => submitted_at + within,
            DeadlineSpec::At(at) => at,
        })
    }
}

/// A completed inference, annotated with per-request provenance: which model
/// and version served it, the batch it rode in, and how long it queued.
#[derive(Debug, Clone)]
#[must_use = "the response carries the inference output"]
pub struct InferResponse {
    /// The id the submission returned for this request.
    pub id: u64,
    /// Name of the model endpoint that served the request.
    pub model: String,
    /// Priority class the request was admitted under.
    pub priority: Priority,
    /// The caller tag attached via [`Request::tag`], echoed back verbatim.
    pub tag: Option<String>,
    /// Model output rows for this request's samples: shape `[n, ...]` where
    /// `n` is the request's sample count.
    pub output: Tensor,
    /// Version of the model state that produced the output: 0 until the first
    /// hot-reload of the endpoint, incremented by each successful reload.
    pub model_version: u64,
    /// Fleet-unique id of the batch this request rode in: requests with equal
    /// `batch_id` were coalesced into one forward pass.
    pub batch_id: u64,
    /// Total samples in the coalesced batch this request rode in.
    pub batch_samples: usize,
    /// Time from submission until a worker pulled the request into a batch.
    pub queue_wait: Duration,
    /// Time from submission until the response was produced.
    pub latency: Duration,
}

/// Handle to a response that has not arrived yet, returned by every submit
/// path ([`RouterClient::send`](crate::RouterClient::send),
/// [`ServeClient::submit`](crate::ServeClient::submit), …).
///
/// The handle supports the full request lifecycle:
/// * [`wait`](ResponseHandle::wait) blocks until the response arrives,
/// * [`wait_timeout`](ResponseHandle::wait_timeout) blocks with a bound and
///   keeps the handle usable on [`ServeError::Timeout`],
/// * [`try_wait`](ResponseHandle::try_wait) polls without blocking,
/// * [`cancel`](ResponseHandle::cancel) asks the scheduler to shed the
///   request if it is still queued — a request already dispatched into a
///   batch completes normally and cancellation is a no-op.
#[derive(Debug)]
#[must_use = "dropping the handle abandons the request's response"]
pub struct ResponseHandle {
    pub(crate) id: u64,
    pub(crate) rx: mpsc::Receiver<Result<InferResponse, ServeError>>,
    pub(crate) cancelled: Arc<AtomicBool>,
}

/// The pre-redesign name of [`ResponseHandle`], kept as an alias for PR-4
/// callers. One signature changed: `wait_timeout` now borrows (`&mut self`)
/// instead of consuming the handle — callers that used it on a non-`mut`
/// binding must add `mut`, and in exchange the handle survives a
/// [`ServeError::Timeout`].
pub type PendingResponse = ResponseHandle;

impl ResponseHandle {
    /// The request id this handle waits for.
    #[must_use]
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Ask the scheduler to shed the request if it is still queued; its
    /// response then arrives as [`ServeError::Cancelled`]. Best-effort and
    /// race-free by construction: a request that a worker already pulled into
    /// a batch completes normally, and cancelling after completion leaves the
    /// response intact — [`wait`](ResponseHandle::wait) still returns it.
    pub fn cancel(&self) {
        self.cancelled.store(true, Ordering::SeqCst);
    }

    /// Block until the response arrives.
    pub fn wait(self) -> Result<InferResponse, ServeError> {
        self.rx.recv().map_err(|_| ServeError::ShuttingDown)?
    }

    /// Block for at most `timeout`. On [`ServeError::Timeout`] the handle
    /// stays usable — the request is still in flight and a later
    /// `wait`/`try_wait`/`cancel` behaves normally. A success consumes the
    /// response: each settles exactly one `wait*` call.
    pub fn wait_timeout(&mut self, timeout: Duration) -> Result<InferResponse, ServeError> {
        match self.rx.recv_timeout(timeout) {
            Ok(result) => result,
            Err(mpsc::RecvTimeoutError::Timeout) => Err(ServeError::Timeout),
            Err(mpsc::RecvTimeoutError::Disconnected) => Err(ServeError::ShuttingDown),
        }
    }

    /// Poll for the response without blocking: `None` while the request is
    /// still in flight, `Some(result)` once it settled (the result is
    /// consumed — a later `wait` observes the server as shut down).
    pub fn try_wait(&mut self) -> Option<Result<InferResponse, ServeError>> {
        match self.rx.try_recv() {
            Ok(result) => Some(result),
            Err(mpsc::TryRecvError::Empty) => None,
            Err(mpsc::TryRecvError::Disconnected) => Some(Err(ServeError::ShuttingDown)),
        }
    }
}

/// A request travelling through the admission queue towards a worker.
///
/// `Debug` skips the tensor payload; it exists so admission errors (which
/// hand the request back) stay unwrap-friendly in tests.
pub(crate) struct PendingInfer {
    pub id: u64,
    pub input: Tensor,
    pub samples: usize,
    pub priority: Priority,
    pub tag: Option<String>,
    pub submitted_at: Instant,
    /// Shed the request at dispatch time once this instant has passed.
    pub deadline: Option<Instant>,
    /// Set by [`ResponseHandle::cancel`]; checked at dispatch time.
    pub cancelled: Arc<AtomicBool>,
    pub reply: mpsc::Sender<Result<InferResponse, ServeError>>,
}

impl PendingInfer {
    /// Why the request must be shed at dispatch time, if it must.
    pub fn dead_reason(&self, now: Instant) -> Option<ServeError> {
        if self.cancelled.load(Ordering::SeqCst) {
            return Some(ServeError::Cancelled);
        }
        match self.deadline {
            Some(deadline) if now > deadline => Some(ServeError::DeadlineExceeded),
            _ => None,
        }
    }
}

impl std::fmt::Debug for PendingInfer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PendingInfer")
            .field("id", &self.id)
            .field("samples", &self.samples)
            .field("priority", &self.priority)
            .field("tag", &self.tag)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serve_error_displays_every_variant() {
        let cases: Vec<(ServeError, &str)> = vec![
            (ServeError::ShuttingDown, "shutting down"),
            (ServeError::BadInput("x".into()), "bad input"),
            (ServeError::UnknownModel("resnet".into()), "`resnet`"),
            (ServeError::Overloaded { retry_after: Duration::from_millis(5) }, "retry after 5.0 ms"),
            (ServeError::DeadlineExceeded, "deadline"),
            (ServeError::Cancelled, "cancelled"),
            (ServeError::InvalidState("y".into()), "hot-reload"),
            (ServeError::WorkerFailed("z".into()), "worker failed"),
            (ServeError::Timeout, "timed out"),
        ];
        for (err, needle) in cases {
            let rendered = err.to_string();
            assert!(rendered.contains(needle), "{rendered:?} should contain {needle:?}");
        }
    }

    #[test]
    fn serve_error_codes_roundtrip_and_match_declared_discriminants() {
        let variants: Vec<ServeError> = vec![
            ServeError::ShuttingDown,
            ServeError::BadInput("bad".into()),
            ServeError::UnknownModel("resnet".into()),
            ServeError::Overloaded { retry_after: Duration::from_millis(5) },
            ServeError::DeadlineExceeded,
            ServeError::Cancelled,
            ServeError::InvalidState("shape".into()),
            ServeError::WorkerFailed("panic".into()),
            ServeError::Timeout,
        ];
        let mut seen = std::collections::HashSet::new();
        for err in &variants {
            let code = err.code();
            assert_ne!(code, 0, "code 0 is reserved for protocol errors");
            assert!(seen.insert(code), "duplicate wire code {code}");
            // `code()` must agree with the declared `#[repr(u16)]` discriminant:
            // for a repr(u16) enum the tag is the first u16 of the value
            // (RFC 2195 layout), so a mismatch between the literal in the enum
            // declaration and the `match` in `code()` fails here.
            let tag = unsafe { *(err as *const ServeError as *const u16) };
            assert_eq!(code, tag, "code() disagrees with declared discriminant for {err:?}");
            // Round-trip: the payload fields travel separately on the wire.
            let (message, retry_after) = match err {
                ServeError::BadInput(m)
                | ServeError::UnknownModel(m)
                | ServeError::InvalidState(m)
                | ServeError::WorkerFailed(m) => (m.as_str(), Duration::ZERO),
                ServeError::Overloaded { retry_after } => ("", *retry_after),
                _ => ("", Duration::ZERO),
            };
            let back =
                ServeError::from_code(code, message, retry_after).expect("every emitted code reconstructs");
            assert_eq!(&back, err, "round-trip changed the variant");
        }
        assert_eq!(seen.len(), variants.len(), "test must cover every variant exactly once");
        assert_eq!(ServeError::from_code(0, "", Duration::ZERO), None, "0 is reserved");
        assert_eq!(ServeError::from_code(u16::MAX, "", Duration::ZERO), None);
    }

    #[test]
    fn serve_error_threads_through_boxed_error_callers() {
        // anyhow-style propagation: `?` into a Box<dyn Error>.
        fn faulty() -> Result<(), ServeError> {
            Err(ServeError::Overloaded { retry_after: Duration::from_millis(1) })
        }
        fn caller() -> Result<(), Box<dyn std::error::Error>> {
            faulty()?;
            Ok(())
        }
        let err = caller().unwrap_err();
        assert!(err.to_string().contains("overloaded"));
    }

    #[test]
    fn config_validation_rejects_degenerate_settings() {
        assert!(ServeConfig { workers: 0, ..base() }.validate().is_err());
        let zero_batch =
            ServeConfig { policy: BatchPolicy { max_batch_size: 0, ..BatchPolicy::default() }, ..base() };
        assert!(zero_batch.validate().is_err());
        let zero_queue = ServeConfig {
            admission: AdmissionPolicy { queue_capacity: Some(0), ..AdmissionPolicy::default() },
            ..base()
        };
        assert!(zero_queue.validate().is_err());
        assert!(ServeConfig { weight: 0, ..base() }.validate().is_err());
        assert!(base().validate().is_ok());
        let unbounded = ServeConfig {
            admission: AdmissionPolicy { queue_capacity: None, ..AdmissionPolicy::default() },
            ..base()
        };
        assert!(unbounded.validate().is_ok());
    }

    fn base() -> ServeConfig {
        ServeConfig { workers: 2, ..ServeConfig::default() }
    }

    #[test]
    fn request_builder_accumulates_lifecycle_fields() {
        let submitted_at = Instant::now();
        let request = Request::new(Tensor::ones(&[1, 2]))
            .priority(Priority::Batch)
            .deadline(Duration::from_millis(10))
            .tag("session-7");
        assert_eq!(request.priority, Priority::Batch);
        assert_eq!(request.tag.as_deref(), Some("session-7"));
        let deadline = request.resolve_deadline(submitted_at).unwrap();
        assert_eq!(deadline, submitted_at + Duration::from_millis(10));

        let at = submitted_at + Duration::from_secs(1);
        let absolute = Request::new(Tensor::ones(&[1, 2])).deadline_at(at);
        assert_eq!(absolute.resolve_deadline(submitted_at), Some(at));
        assert_eq!(Request::new(Tensor::ones(&[1, 2])).resolve_deadline(submitted_at), None);
    }

    #[test]
    fn dead_reason_prefers_cancellation_and_respects_deadlines() {
        let now = Instant::now();
        let (reply, _rx) = mpsc::channel();
        let mut req = PendingInfer {
            id: 0,
            input: Tensor::ones(&[1, 2]),
            samples: 1,
            priority: Priority::Interactive,
            tag: None,
            submitted_at: now,
            deadline: None,
            cancelled: Arc::new(AtomicBool::new(false)),
            reply,
        };
        assert_eq!(req.dead_reason(now), None);
        req.deadline = Some(now + Duration::from_millis(5));
        assert_eq!(req.dead_reason(now), None, "deadline in the future is live");
        assert_eq!(
            req.dead_reason(now + Duration::from_millis(6)),
            Some(ServeError::DeadlineExceeded),
            "expired deadline sheds"
        );
        req.cancelled.store(true, Ordering::SeqCst);
        assert_eq!(
            req.dead_reason(now),
            Some(ServeError::Cancelled),
            "cancellation dominates even before the deadline"
        );
    }
}
