//! The admission layer: one bounded queue per priority class per model.
//!
//! Clients admit requests synchronously — a full class queue rejects the
//! request immediately (the caller surfaces
//! [`ServeError::Overloaded`](crate::ServeError::Overloaded)) instead of
//! queueing forever — and idle workers drain the queues through the
//! scheduler, seeding batches interactive-first (tempered by the batch-class
//! aging credit) and picking shape-compatible requests without head-of-line
//! blocking across shapes.

use crate::request::{PendingInfer, Priority};
use crate::scheduler::compat_key;
use crate::sync::{lock_or_recover, wait_deadline_or_recover, wait_or_recover};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

/// Why a request could not be admitted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum AdmitRejection {
    /// The queue for the request's priority class is at capacity.
    Full,
    /// The endpoint is shutting down.
    Closed,
}

/// Outcome of a blocking pop.
pub(crate) enum PopResult {
    /// The queued request chosen to seed the next batch.
    Request(PendingInfer),
    /// The queue is closed and fully drained.
    Closed,
}

/// Outcome of a compatible-take while a batch is open.
pub(crate) enum TakeResult {
    /// One or more shape-compatible requests, in class-then-EDF order
    /// (earliest deadline first within a class, FIFO among the undeadlined).
    Taken(Vec<PendingInfer>),
    /// Nothing compatible arrived before the deadline.
    TimedOut,
    /// The queue closed; flush the open batch and start draining.
    Closed,
}

struct QueueState {
    /// One FIFO per priority class, indexed by [`Priority::index`].
    classes: [VecDeque<PendingInfer>; Priority::COUNT],
    /// Queued samples per class (capacity is counted in samples).
    queued_samples: [usize; Priority::COUNT],
    /// Consecutive interactive-seeded pops while batch-class work waited;
    /// drives the aging credit.
    interactive_streak: u32,
    /// A worker currently holds this endpoint's batch-formation token (see
    /// [`AdmissionQueue::begin_formation`]).
    forming: bool,
    closed: bool,
}

/// A model endpoint's bounded two-class admission queue.
pub(crate) struct AdmissionQueue {
    /// Per-class capacity in samples; `None` = unbounded (overload baseline).
    capacity: Option<usize>,
    /// Aging credit: seed from the batch class after this many consecutive
    /// interactive seeds while batch work waited (0 = strict priority).
    batch_aging: u32,
    /// Mirror of the total queued samples, refreshed under the state lock on
    /// every mutation — shared with the fleet scheduler so depth reads never
    /// take the queue lock.
    depth_cell: Arc<AtomicUsize>,
    state: Mutex<QueueState>,
    arrived: Condvar,
    /// Signals release of the batch-formation token. Deliberately separate
    /// from `arrived`: `try_admit` posts one notification per arrival, and if
    /// token waiters shared the condvar they could consume it — the waiter
    /// re-checks `forming` and sleeps again while the token *holder*, filling
    /// a batch in `take_compatible`, sleeps out its whole wait budget. That
    /// stolen-wakeup tax grew with the worker count and showed up as negative
    /// scaling on a single core.
    formation: Condvar,
}

impl AdmissionQueue {
    pub fn new(capacity: Option<usize>, batch_aging: u32, depth_cell: Arc<AtomicUsize>) -> Self {
        AdmissionQueue {
            capacity,
            batch_aging,
            depth_cell,
            state: Mutex::new(QueueState {
                classes: [VecDeque::new(), VecDeque::new()],
                queued_samples: [0; Priority::COUNT],
                interactive_streak: 0,
                forming: false,
                closed: false,
            }),
            arrived: Condvar::new(),
            formation: Condvar::new(),
        }
    }

    /// Refresh the lock-free depth mirror; call after every mutation, while
    /// still holding the state lock.
    fn sync_depth(&self, st: &QueueState) {
        self.depth_cell.store(st.queued_samples.iter().sum(), Ordering::Relaxed);
    }

    /// Total samples currently queued across both classes (lock-free).
    pub fn depth(&self) -> usize {
        self.depth_cell.load(Ordering::Relaxed)
    }

    /// Queued samples ahead of a newly admitted request of `priority`: the
    /// interactive class only waits behind its own backlog, the batch class
    /// waits behind everything (interactive drains first).
    // quadra-analyze: allow(panic_path:indexing, class arrays are Priority::COUNT-sized and indexed via Priority::index())
    pub fn class_backlog(&self, priority: Priority) -> usize {
        let st = lock_or_recover(&self.state);
        match priority {
            Priority::Interactive => st.queued_samples[Priority::Interactive.index()],
            Priority::Batch => st.queued_samples.iter().sum(),
        }
    }

    /// Admit `req`, or reject it without queueing. A request larger than the
    /// whole capacity is still admitted when its class queue is empty —
    /// otherwise it could never be served at all (it then occupies the queue
    /// alone, exactly like an oversized batch occupies a worker alone).
    ///
    /// The `Err` variant hands the (tensor-carrying) request back by value on
    /// purpose: the caller destructures it on the spot, nothing propagates.
    // quadra-analyze: allow(panic_path:indexing, class arrays are Priority::COUNT-sized and indexed via Priority::index())
    #[allow(clippy::result_large_err)]
    pub fn try_admit(&self, req: PendingInfer) -> Result<(), (PendingInfer, AdmitRejection)> {
        let mut st = lock_or_recover(&self.state);
        if st.closed {
            return Err((req, AdmitRejection::Closed));
        }
        let class = req.priority.index();
        if let Some(cap) = self.capacity {
            let queued = st.queued_samples[class];
            if queued > 0 && queued + req.samples > cap {
                return Err((req, AdmitRejection::Full));
            }
        }
        st.queued_samples[class] += req.samples;
        st.classes[class].push_back(req);
        self.sync_depth(&st);
        drop(st);
        self.arrived.notify_one();
        Ok(())
    }

    /// Mark the queue closed and wake every waiter. Already-queued requests
    /// remain poppable so workers can drain them into final batches.
    pub fn close(&self) {
        lock_or_recover(&self.state).closed = true;
        self.arrived.notify_all();
        self.formation.notify_all();
    }

    /// Acquire this endpoint's **batch-formation token**, blocking while
    /// another worker holds it. Exactly one worker per endpoint seeds and
    /// fills a batch at a time; without the token, idle workers race for
    /// seeds and split one arrival stream into fragments (4 workers turned a
    /// steady mean batch of 8 into ~3 on a saturated single core, and
    /// per-batch overhead made scaling *negative*). The token covers only
    /// formation — the holder releases it before the fair-share gate, so the
    /// next worker forms the next batch while this one waits for its grant
    /// and executes. Liveness: the holder is always bounded — `pop_blocking`
    /// returns on close, and the fill wait is deadline-bounded — so the token
    /// always comes back.
    pub fn begin_formation(&self) -> FormationGuard<'_> {
        let mut st = lock_or_recover(&self.state);
        while st.forming {
            st = wait_or_recover(&self.formation, st);
        }
        st.forming = true;
        FormationGuard { queue: self }
    }

    /// The class order for the next seed pop: interactive first, unless the
    /// aging credit fires (batch-class work waited through `batch_aging`
    /// consecutive interactive seeds).
    // quadra-analyze: allow(panic_path:indexing, class arrays are Priority::COUNT-sized and indexed via Priority::index())
    fn seed_order(&self, st: &QueueState) -> [usize; Priority::COUNT] {
        let batch = Priority::Batch.index();
        if self.batch_aging > 0 && st.interactive_streak >= self.batch_aging && !st.classes[batch].is_empty()
        {
            [batch, Priority::Interactive.index()]
        } else {
            [Priority::Interactive.index(), batch]
        }
    }

    /// Block until a request is available or the queue is closed *and* empty.
    /// Interactive seeds first, except when the batch class's aging credit
    /// fires; the streak bookkeeping lives here, under the queue lock.
    // quadra-analyze: allow(panic_path:indexing, class arrays are Priority::COUNT-sized and indexed via Priority::index())
    pub fn pop_blocking(&self) -> PopResult {
        let mut st = lock_or_recover(&self.state);
        loop {
            let order = self.seed_order(&st);
            for class in order {
                if let Some(req) = st.classes[class].pop_front() {
                    st.queued_samples[class] -= req.samples;
                    self.sync_depth(&st);
                    if class == Priority::Interactive.index() {
                        if st.classes[Priority::Batch.index()].is_empty() {
                            // No batch-class work waited: nothing is aging.
                            st.interactive_streak = 0;
                        } else {
                            st.interactive_streak = st.interactive_streak.saturating_add(1);
                        }
                    } else {
                        st.interactive_streak = 0;
                    }
                    return PopResult::Request(req);
                }
            }
            if st.closed {
                return PopResult::Closed;
            }
            st = wait_or_recover(&self.arrived, st);
        }
    }

    /// Remove queued requests compatible with `key` (interactive class first,
    /// earliest deadline first within a class — EDF — with FIFO ordering the
    /// deadline-less tail and breaking deadline ties) totalling at most
    /// `max_samples`. Blocks until at least one is found, the `deadline`
    /// passes, or the queue closes.
    ///
    /// Incompatible requests are left in place — they seed the *next* batch —
    /// and compatible requests too large for the remaining sample budget are
    /// skipped (they stay queued in order).
    // quadra-analyze: allow(panic_path:indexing, class arrays are Priority::COUNT-sized; queue indices come from the 0..len candidate scan)
    pub fn take_compatible(
        &self,
        key: &[usize],
        pad_mixed_spatial: bool,
        max_samples: usize,
        deadline: Instant,
    ) -> TakeResult {
        let mut st = lock_or_recover(&self.state);
        loop {
            // Requests carry ≥1 sample each, so `max_samples` bounds the take.
            let mut taken = Vec::with_capacity(max_samples.min(16));
            let mut budget = max_samples;
            for class in 0..Priority::COUNT {
                let queue = &mut st.classes[class];
                // EDF slack ordering: a tight-deadline request rides the
                // batch that is leaving *now* instead of waiting out the
                // FIFO prefix ahead of it.
                let mut order: Vec<usize> = (0..queue.len())
                    .filter(|&i| compat_key(queue[i].input.shape(), pad_mixed_spatial) == key)
                    .collect();
                order.sort_by_key(|&i| (queue[i].deadline.is_none(), queue[i].deadline, i));
                let mut chosen = Vec::with_capacity(order.len());
                for &i in &order {
                    if queue[i].samples <= budget {
                        budget -= queue[i].samples;
                        chosen.push(i);
                        if budget == 0 {
                            break;
                        }
                    }
                }
                // Extract by descending index so earlier removals don't
                // shift later ones, remembering each request's EDF rank so
                // the take order can be restored without re-searching.
                let mut desc: Vec<(usize, usize)> =
                    chosen.iter().copied().enumerate().map(|(rank, i)| (i, rank)).collect();
                desc.sort_unstable_by_key(|&(i, _)| std::cmp::Reverse(i));
                let mut extracted: Vec<(usize, PendingInfer)> = Vec::with_capacity(desc.len());
                let mut removed_samples = 0;
                for (i, rank) in desc {
                    if let Some(req) = queue.remove(i) {
                        removed_samples += req.samples;
                        extracted.push((rank, req));
                    }
                }
                extracted.sort_unstable_by_key(|&(rank, _)| rank);
                taken.extend(extracted.into_iter().map(|(_, req)| req));
                st.queued_samples[class] -= removed_samples;
                if budget == 0 {
                    break;
                }
            }
            if !taken.is_empty() {
                self.sync_depth(&st);
                return TakeResult::Taken(taken);
            }
            if st.closed {
                return TakeResult::Closed;
            }
            if Instant::now() >= deadline {
                return TakeResult::TimedOut;
            }
            let (guard, timed_out) = wait_deadline_or_recover(&self.arrived, st, deadline);
            st = guard;
            if timed_out && st.classes.iter().all(|q| q.is_empty()) {
                return TakeResult::TimedOut;
            }
        }
    }
}

/// Holds an endpoint's batch-formation token; dropping it releases the token
/// and wakes exactly one worker waiting in
/// [`AdmissionQueue::begin_formation`] (its dedicated `formation` condvar —
/// request arrivals never wake token waiters, and token releases never wake
/// the filler).
pub(crate) struct FormationGuard<'a> {
    queue: &'a AdmissionQueue,
}

impl Drop for FormationGuard<'_> {
    fn drop(&mut self) {
        lock_or_recover(&self.queue.state).forming = false;
        self.queue.formation.notify_one();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::ServeError;
    use quadra_tensor::Tensor;
    use std::sync::atomic::AtomicBool;
    use std::sync::{mpsc, Arc};
    use std::time::Duration;

    fn req(samples: usize, priority: Priority) -> PendingInfer {
        let (reply, rx) = mpsc::channel::<Result<crate::InferResponse, ServeError>>();
        std::mem::forget(rx); // keep the reply channel alive for the test's lifetime
        PendingInfer {
            id: 0,
            input: Tensor::zeros(&[samples, 2]),
            samples,
            priority,
            tag: None,
            submitted_at: Instant::now(),
            deadline: None,
            cancelled: Arc::new(AtomicBool::new(false)),
            reply,
        }
    }

    fn pop_priority(q: &AdmissionQueue) -> Priority {
        match q.pop_blocking() {
            PopResult::Request(r) => r.priority,
            PopResult::Closed => panic!("queue not closed"),
        }
    }

    #[test]
    fn bounded_class_queue_rejects_when_full() {
        let q = AdmissionQueue::new(Some(3), 0, Arc::new(AtomicUsize::new(0)));
        q.try_admit(req(2, Priority::Interactive)).unwrap();
        q.try_admit(req(1, Priority::Interactive)).unwrap();
        let err = q.try_admit(req(1, Priority::Interactive)).unwrap_err();
        assert_eq!(err.1, AdmitRejection::Full);
        // The other class has its own budget.
        q.try_admit(req(3, Priority::Batch)).unwrap();
        assert_eq!(q.depth(), 6);
    }

    #[test]
    fn oversized_request_admitted_only_into_empty_class() {
        let q = AdmissionQueue::new(Some(2), 0, Arc::new(AtomicUsize::new(0)));
        q.try_admit(req(5, Priority::Interactive)).unwrap();
        let err = q.try_admit(req(5, Priority::Interactive)).unwrap_err();
        assert_eq!(err.1, AdmitRejection::Full);
    }

    #[test]
    fn pop_prefers_interactive() {
        let q = AdmissionQueue::new(None, 0, Arc::new(AtomicUsize::new(0)));
        q.try_admit(req(1, Priority::Batch)).unwrap();
        q.try_admit(req(1, Priority::Interactive)).unwrap();
        assert_eq!(pop_priority(&q), Priority::Interactive);
        assert_eq!(pop_priority(&q), Priority::Batch);
    }

    #[test]
    fn class_backlog_is_interactive_only_for_interactive() {
        let q = AdmissionQueue::new(None, 0, Arc::new(AtomicUsize::new(0)));
        q.try_admit(req(2, Priority::Interactive)).unwrap();
        q.try_admit(req(3, Priority::Batch)).unwrap();
        assert_eq!(q.class_backlog(Priority::Interactive), 2, "interactive only waits behind its class");
        assert_eq!(q.class_backlog(Priority::Batch), 5, "batch class waits behind everything");
    }

    #[test]
    fn aging_credit_seeds_batch_class_after_streak() {
        // Aging every 2 interactive seeds: I, I, then the batch class's turn.
        let q = AdmissionQueue::new(None, 2, Arc::new(AtomicUsize::new(0)));
        q.try_admit(req(1, Priority::Batch)).unwrap();
        for _ in 0..4 {
            q.try_admit(req(1, Priority::Interactive)).unwrap();
        }
        assert_eq!(pop_priority(&q), Priority::Interactive);
        assert_eq!(pop_priority(&q), Priority::Interactive);
        assert_eq!(pop_priority(&q), Priority::Batch, "aging credit fires after the streak");
        assert_eq!(pop_priority(&q), Priority::Interactive, "strict priority resumes after the aged seed");
        assert_eq!(pop_priority(&q), Priority::Interactive);
    }

    #[test]
    fn interactive_streak_resets_when_no_batch_work_waits() {
        let q = AdmissionQueue::new(None, 2, Arc::new(AtomicUsize::new(0)));
        // Interactive pops with an empty batch queue never age anything.
        for _ in 0..5 {
            q.try_admit(req(1, Priority::Interactive)).unwrap();
            assert_eq!(pop_priority(&q), Priority::Interactive);
        }
        // Batch work arrives now: the streak starts from zero.
        q.try_admit(req(1, Priority::Batch)).unwrap();
        q.try_admit(req(1, Priority::Interactive)).unwrap();
        q.try_admit(req(1, Priority::Interactive)).unwrap();
        q.try_admit(req(1, Priority::Interactive)).unwrap();
        assert_eq!(pop_priority(&q), Priority::Interactive);
        assert_eq!(pop_priority(&q), Priority::Interactive);
        assert_eq!(pop_priority(&q), Priority::Batch);
    }

    #[test]
    fn zero_aging_restores_strict_priority() {
        let q = AdmissionQueue::new(None, 0, Arc::new(AtomicUsize::new(0)));
        q.try_admit(req(1, Priority::Batch)).unwrap();
        for _ in 0..16 {
            q.try_admit(req(1, Priority::Interactive)).unwrap();
        }
        for _ in 0..16 {
            assert_eq!(pop_priority(&q), Priority::Interactive, "strict priority never ages");
        }
        assert_eq!(pop_priority(&q), Priority::Batch);
    }

    #[test]
    fn take_compatible_skips_other_shapes_and_respects_budget() {
        let q = AdmissionQueue::new(None, 0, Arc::new(AtomicUsize::new(0)));
        q.try_admit(req(2, Priority::Batch)).unwrap(); // [2, 2] — compatible
        let (reply, _rx) = mpsc::channel();
        q.try_admit(PendingInfer {
            id: 1,
            input: Tensor::zeros(&[1, 3]),
            samples: 1,
            priority: Priority::Interactive,
            tag: None,
            submitted_at: Instant::now(),
            deadline: None,
            cancelled: Arc::new(AtomicBool::new(false)),
            reply,
        })
        .unwrap(); // [1, 3] — different trailing shape, must stay queued
        q.try_admit(req(4, Priority::Interactive)).unwrap(); // too big for budget 3

        let key = compat_key(&[1, 2], false);
        match q.take_compatible(&key, false, 3, Instant::now()) {
            TakeResult::Taken(reqs) => {
                assert_eq!(reqs.len(), 1);
                assert_eq!(reqs[0].samples, 2);
            }
            _ => panic!("expected a take"),
        }
        assert_eq!(q.depth(), 5, "incompatible and over-budget requests stay queued");
    }

    fn req_with(id: u64, samples: usize, priority: Priority, deadline: Option<Instant>) -> PendingInfer {
        let mut r = req(samples, priority);
        r.id = id;
        r.deadline = deadline;
        r
    }

    #[test]
    fn take_compatible_orders_by_deadline_slack() {
        let q = AdmissionQueue::new(None, 0, Arc::new(AtomicUsize::new(0)));
        let now = Instant::now();
        // FIFO arrival: two undeadlined requests, then a tight deadline, then
        // a loose one. EDF must take tight, loose, then the FIFO tail.
        q.try_admit(req_with(1, 1, Priority::Interactive, None)).unwrap();
        q.try_admit(req_with(2, 1, Priority::Interactive, None)).unwrap();
        q.try_admit(req_with(3, 1, Priority::Interactive, Some(now + Duration::from_millis(5)))).unwrap();
        q.try_admit(req_with(4, 1, Priority::Interactive, Some(now + Duration::from_secs(60)))).unwrap();

        let key = compat_key(&[1, 2], false);
        match q.take_compatible(&key, false, 8, now) {
            TakeResult::Taken(reqs) => {
                let ids: Vec<u64> = reqs.iter().map(|r| r.id).collect();
                assert_eq!(ids, vec![3, 4, 1, 2], "deadlines first (tightest leading), then FIFO");
            }
            _ => panic!("expected a take"),
        }
    }

    #[test]
    fn edf_take_respects_budget_without_losing_order() {
        let q = AdmissionQueue::new(None, 0, Arc::new(AtomicUsize::new(0)));
        let now = Instant::now();
        // The deadlined request is behind a FIFO prefix that would exhaust
        // the budget on its own; EDF must still take it first.
        q.try_admit(req_with(1, 2, Priority::Interactive, None)).unwrap();
        q.try_admit(req_with(2, 2, Priority::Interactive, None)).unwrap();
        q.try_admit(req_with(3, 1, Priority::Interactive, Some(now + Duration::from_millis(1)))).unwrap();

        let key = compat_key(&[1, 2], false);
        match q.take_compatible(&key, false, 3, now) {
            TakeResult::Taken(reqs) => {
                let ids: Vec<u64> = reqs.iter().map(|r| r.id).collect();
                assert_eq!(ids, vec![3, 1], "the deadlined request jumps the FIFO prefix");
            }
            _ => panic!("expected a take"),
        }
        assert_eq!(q.depth(), 2, "the over-budget FIFO request stays queued");
    }

    #[test]
    fn edf_keeps_interactive_class_ahead_of_batch() {
        let q = AdmissionQueue::new(None, 0, Arc::new(AtomicUsize::new(0)));
        let now = Instant::now();
        // A batch-class request with a tight deadline must not leapfrog the
        // interactive class: EDF reorders only *within* a class.
        q.try_admit(req_with(1, 1, Priority::Batch, Some(now + Duration::from_millis(1)))).unwrap();
        q.try_admit(req_with(2, 1, Priority::Interactive, None)).unwrap();

        let key = compat_key(&[1, 2], false);
        match q.take_compatible(&key, false, 8, now) {
            TakeResult::Taken(reqs) => {
                let ids: Vec<u64> = reqs.iter().map(|r| r.id).collect();
                assert_eq!(ids, vec![2, 1], "class order dominates deadline order");
            }
            _ => panic!("expected a take"),
        }
    }

    #[test]
    fn formation_token_is_exclusive_and_released_on_drop() {
        let q = Arc::new(AdmissionQueue::new(None, 0, Arc::new(AtomicUsize::new(0))));
        let guard = q.begin_formation();
        // A second former must block until the first guard drops.
        let contender = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || {
                let _guard = q.begin_formation();
                Instant::now()
            })
        };
        std::thread::sleep(Duration::from_millis(30));
        let released_at = Instant::now();
        drop(guard);
        let acquired_at = contender.join().unwrap();
        assert!(acquired_at >= released_at, "the contender acquired the token before it was released");
        // And the token is free again afterwards.
        drop(q.begin_formation());
    }

    #[test]
    fn close_wakes_formation_waiters_once_holder_releases() {
        // A closed queue still hands the token out sequentially: each drain
        // worker takes it, sees Closed from pop_blocking, and releases it.
        let q = Arc::new(AdmissionQueue::new(None, 0, Arc::new(AtomicUsize::new(0))));
        q.close();
        let workers: Vec<_> = (0..3)
            .map(|_| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    let guard = q.begin_formation();
                    let closed = matches!(q.pop_blocking(), PopResult::Closed);
                    drop(guard);
                    closed
                })
            })
            .collect();
        for w in workers {
            assert!(w.join().unwrap(), "every drain worker observed Closed");
        }
    }

    #[test]
    fn close_rejects_admission_but_drains_queued() {
        let q = AdmissionQueue::new(None, 0, Arc::new(AtomicUsize::new(0)));
        q.try_admit(req(1, Priority::Interactive)).unwrap();
        q.close();
        let err = q.try_admit(req(1, Priority::Interactive)).unwrap_err();
        assert_eq!(err.1, AdmitRejection::Closed);
        assert!(matches!(q.pop_blocking(), PopResult::Request(_)));
        assert!(matches!(q.pop_blocking(), PopResult::Closed));
        let key = compat_key(&[1, 2], false);
        assert!(matches!(
            q.take_compatible(&key, false, 8, Instant::now() + Duration::from_secs(5)),
            TakeResult::Closed
        ));
    }
}
