//! The `quadra-gateway` server binary: a [`Router`] behind real sockets.
//!
//! ```text
//! quadra-gateway [--listen ADDR] [--workers N] [--max-batch N] [--queue N]
//!                [--endpoint NAME=SPEC]...
//! ```
//!
//! Endpoint specs (repeatable; default `mlp=mlp:64x32x10`):
//!
//! * `mlp:64x32x10` — ReLU MLP with the given layer widths; requests carry
//!   `[n, 64]` inputs.
//! * `mobilenet:16` — MobileNetV1 (0.25×, 5 depthwise pairs) on `[n, 3,
//!   16, 16]` images.
//! * `resnet:16` — ResNet-20 (width 8) on `[n, 3, 16, 16]` images.
//!
//! On startup the binary prints exactly one line to stdout —
//! `quadra-gateway listening on ADDR` — which a supervising process (the
//! `gateway_load` bench, the loopback smoke) parses to learn the ephemeral
//! port. It then serves until **stdin reaches EOF**, which triggers the
//! graceful drain; final router metrics land on stderr. Driving shutdown
//! through stdin keeps the contract portable (no signal handling) and makes
//! "kill it cleanly from a script" a one-liner: close the pipe.

use quadra_core::{build_model, ModelConfig};
use quadra_gateway::{Gateway, GatewayConfig};
use quadra_models::{mobilenet_v1_config, resnet20_config};
use quadra_nn::{Layer, Linear, Relu, Sequential};
use quadra_serve::{AdmissionPolicy, BatchPolicy, Router, ServeConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::io::{Read, Write};
use std::time::Duration;

/// One parsed `--endpoint NAME=SPEC`.
enum ModelSpec {
    Mlp(Vec<usize>),
    Config(ModelConfig),
}

fn parse_spec(spec: &str) -> Result<ModelSpec, String> {
    let (kind, params) = spec.split_once(':').ok_or_else(|| format!("spec `{spec}` needs KIND:PARAMS"))?;
    match kind {
        "mlp" => {
            let widths: Result<Vec<usize>, _> = params.split('x').map(str::parse).collect();
            let widths = widths.map_err(|e| format!("bad mlp widths in `{spec}`: {e}"))?;
            if widths.len() < 2 {
                return Err(format!("mlp spec `{spec}` needs at least in/out widths"));
            }
            Ok(ModelSpec::Mlp(widths))
        }
        "mobilenet" => {
            let image: usize = params.parse().map_err(|e| format!("bad image size in `{spec}`: {e}"))?;
            Ok(ModelSpec::Config(mobilenet_v1_config(5, 0.25, 3, image, 10)))
        }
        "resnet" => {
            let image: usize = params.parse().map_err(|e| format!("bad image size in `{spec}`: {e}"))?;
            Ok(ModelSpec::Config(resnet20_config(8, 10, image)))
        }
        other => Err(format!("unknown model kind `{other}` (mlp | mobilenet | resnet)")),
    }
}

fn mlp_factory(widths: Vec<usize>) -> impl Fn() -> Box<dyn Layer> + Send + Sync + 'static {
    move || {
        let mut rng = StdRng::seed_from_u64(11);
        let mut layers: Vec<Box<dyn Layer>> = Vec::new();
        for (i, pair) in widths.windows(2).enumerate() {
            if i > 0 {
                layers.push(Box::new(Relu::new()));
            }
            layers.push(Box::new(Linear::new(pair[0], pair[1], true, &mut rng)));
        }
        Box::new(Sequential::new(layers))
    }
}

struct Args {
    listen: String,
    workers: usize,
    max_batch: usize,
    queue: usize,
    endpoints: Vec<(String, ModelSpec)>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        listen: "127.0.0.1:0".to_string(),
        workers: 2,
        max_batch: 8,
        queue: 256,
        endpoints: Vec::new(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} needs a value"));
        match flag.as_str() {
            "--listen" => args.listen = value("--listen")?,
            "--workers" => {
                args.workers = value("--workers")?.parse().map_err(|e| format!("--workers: {e}"))?
            }
            "--max-batch" => {
                args.max_batch = value("--max-batch")?.parse().map_err(|e| format!("--max-batch: {e}"))?
            }
            "--queue" => args.queue = value("--queue")?.parse().map_err(|e| format!("--queue: {e}"))?,
            "--endpoint" => {
                let pair = value("--endpoint")?;
                let (name, spec) =
                    pair.split_once('=').ok_or_else(|| format!("--endpoint `{pair}` needs NAME=SPEC"))?;
                args.endpoints.push((name.to_string(), parse_spec(spec)?));
            }
            "--help" | "-h" => {
                return Err("usage: quadra-gateway [--listen ADDR] [--workers N] [--max-batch N] \
                            [--queue N] [--endpoint NAME=SPEC]..."
                    .to_string())
            }
            other => return Err(format!("unknown flag `{other}` (try --help)")),
        }
    }
    if args.endpoints.is_empty() {
        args.endpoints.push(("mlp".to_string(), parse_spec("mlp:64x32x10")?));
    }
    Ok(args)
}

fn main() {
    let args = match parse_args() {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };

    let serve_config = ServeConfig {
        workers: args.workers,
        policy: BatchPolicy { max_batch_size: args.max_batch, ..BatchPolicy::default() },
        admission: AdmissionPolicy { queue_capacity: Some(args.queue), ..AdmissionPolicy::default() },
        ..ServeConfig::default()
    };
    let mut builder = Router::builder();
    for (name, spec) in args.endpoints {
        builder = match spec {
            ModelSpec::Mlp(widths) => builder.endpoint(&name, serve_config, mlp_factory(widths)),
            ModelSpec::Config(config) => builder.endpoint(&name, serve_config, move || {
                Box::new(build_model(&config, &mut StdRng::seed_from_u64(11)))
            }),
        };
    }
    let router = match builder.start() {
        Ok(router) => router,
        Err(e) => {
            eprintln!("router failed to start: {e}");
            std::process::exit(1);
        }
    };

    let gateway_config = GatewayConfig {
        listen: args.listen,
        drain_timeout: Duration::from_secs(10),
        ..GatewayConfig::default()
    };
    let gateway = match Gateway::start(gateway_config, router) {
        Ok(gateway) => gateway,
        Err(e) => {
            eprintln!("gateway failed to start: {e}");
            std::process::exit(1);
        }
    };

    // The one line supervisors parse; flush so a piped reader sees it now.
    println!("quadra-gateway listening on {}", gateway.local_addr());
    let _ = std::io::stdout().flush();

    // Serve until stdin closes.
    let mut sink = [0u8; 256];
    let mut stdin = std::io::stdin();
    loop {
        match stdin.read(&mut sink) {
            Ok(0) => break,
            Ok(_) => continue,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => break,
        }
    }

    eprintln!("quadra-gateway: draining");
    let metrics = gateway.shutdown();
    for m in &metrics.models {
        eprintln!(
            "quadra-gateway: {} served {} requests in {} batches (mean batch {:.2})",
            m.model, m.completed_requests, m.batches, m.mean_batch_size
        );
    }
}
