//! Structural model of one source file: the token stream plus extracted
//! function spans, enclosing `impl` types, `#[cfg(test)]`/`#[test]` regions,
//! per-file `use`-alias maps (for cross-crate call resolution), and parsed
//! `// quadra-analyze: allow(...)` suppression directives.

use crate::lexer::{lex, LineComment, Tok, TokKind};
use std::collections::BTreeMap;

/// Every pass name a suppression directive may target. Also feeds the
/// incremental-cache fingerprint: adding a pass invalidates cached runs.
pub const PASSES: [&str; 8] =
    ["lock_order", "panic_path", "clock", "must_use", "atomics", "condvar", "hot_alloc", "suppression"];

/// A parsed suppression directive.
///
/// Grammar: `// quadra-analyze: allow(<pass>[:<check>], <reason>)`.
/// The reason is mandatory; a directive without one is itself a finding.
#[derive(Debug, Clone)]
pub struct Suppression {
    /// Pass name the directive targets (`lock_order`, `panic_path`, ...).
    pub pass: String,
    /// Optional check qualifier (`panic_path:indexing` → `indexing`).
    pub check: Option<String>,
    /// Free-form justification.
    pub reason: String,
    /// 1-based line of the comment.
    pub line: u32,
    /// Inclusive line range the directive covers.
    pub covers: (u32, u32),
}

/// A malformed suppression (missing reason, unknown syntax). Reported by the
/// driver as an unsuppressable finding.
#[derive(Debug, Clone)]
pub struct BadSuppression {
    /// 1-based line of the comment.
    pub line: u32,
    /// Why the directive failed to parse.
    pub problem: String,
}

/// One `fn` item found in the file.
#[derive(Debug, Clone)]
pub struct FnInfo {
    /// Function name.
    pub name: String,
    /// Self type of the enclosing `impl`, when any.
    pub impl_type: Option<String>,
    /// 1-based line the item starts on (first qualifier or attribute).
    pub item_line: u32,
    /// Token index range of the body, inclusive of both braces.
    /// `None` for bodyless trait-method signatures.
    pub body: Option<(usize, usize)>,
    /// 1-based line of the body's closing brace (== item_line when bodyless).
    pub end_line: u32,
    /// True when the fn sits inside `#[cfg(test)]` code or carries `#[test]`.
    pub is_test: bool,
}

/// A fully parsed source file.
#[derive(Debug)]
pub struct SourceFile {
    /// Workspace-relative path, forward slashes.
    pub path: String,
    /// Owning crate name (`quadra-serve`, `rayon`, ...).
    pub crate_name: String,
    /// Token stream.
    pub toks: Vec<Tok>,
    /// Raw source lines, for report snippets.
    pub lines: Vec<String>,
    /// Parsed suppression directives.
    pub suppressions: Vec<Suppression>,
    /// Malformed suppression directives.
    pub bad_suppressions: Vec<BadSuppression>,
    /// Extracted functions, in source order.
    pub fns: Vec<FnInfo>,
    /// Per-token flag: true when the token is inside test-only code.
    pub test_mask: Vec<bool>,
    /// Names importable in this file mapped to the first segment of their
    /// `use` path (`use quadra_core::MemoryProfiler` → `MemoryProfiler` ↦
    /// `quadra_core`; `use crate::sync::lock_or_recover` → ↦ `crate`).
    /// `as` renames map the alias, grouped trees are flattened, globs are
    /// ignored (conservative: unresolvable names stay intra-crate).
    pub use_aliases: BTreeMap<String, String>,
}

impl SourceFile {
    /// Lex and structurally parse `content`.
    pub fn parse(path: &str, crate_name: &str, content: &str) -> SourceFile {
        let lexed = lex(content);
        let test_mask = compute_test_mask(&lexed.toks);
        let fns = extract_fns(&lexed.toks, &test_mask);
        let (suppressions, bad_suppressions) = parse_suppressions(&lexed.comments, &lexed.toks, &fns);
        let use_aliases = extract_use_aliases(&lexed.toks);
        SourceFile {
            path: path.to_string(),
            crate_name: crate_name.to_string(),
            toks: lexed.toks,
            lines: content.lines().map(|l| l.to_string()).collect(),
            suppressions,
            bad_suppressions,
            fns,
            test_mask,
            use_aliases,
        }
    }

    /// The innermost function whose body contains token `idx`.
    pub fn enclosing_fn(&self, idx: usize) -> Option<&FnInfo> {
        self.fns
            .iter()
            .filter(|f| f.body.is_some_and(|(o, c)| idx >= o && idx <= c))
            .min_by_key(|f| f.body.map(|(o, c)| c - o).unwrap_or(usize::MAX))
    }

    /// True when token `idx` is inside test-only code.
    pub fn is_test_tok(&self, idx: usize) -> bool {
        self.test_mask.get(idx).copied().unwrap_or(false)
    }

    /// Source text of 1-based `line`, trimmed, for report snippets.
    pub fn line_text(&self, line: u32) -> &str {
        self.lines.get(line.saturating_sub(1) as usize).map(|s| s.trim()).unwrap_or("")
    }
}

/// Collect every `use` declaration's bindings: the name each import makes
/// available in this file, mapped to the first segment of its path. Handles
/// plain paths, `as` renames, and (nested) `{...}` group trees; `*` globs are
/// skipped — a glob-imported name simply resolves intra-crate, which only
/// under-approximates the cross-crate call graph, never mis-attributes.
fn extract_use_aliases(toks: &[Tok]) -> BTreeMap<String, String> {
    let mut out = BTreeMap::new();
    let mut i = 0usize;
    while i < toks.len() {
        if toks[i].is_ident("use") {
            i = parse_use_tree(toks, i + 1, None, &mut out);
        } else {
            i += 1;
        }
    }
    out
}

/// Parse one `use` tree starting at `i`, recording bindings under
/// `first_segment` (the root of the path so far, `None` at the top level).
/// Returns the index just past the tree.
fn parse_use_tree(
    toks: &[Tok],
    mut i: usize,
    first_segment: Option<&str>,
    out: &mut BTreeMap<String, String>,
) -> usize {
    // A brace group: each comma-separated entry restarts under the same root.
    if i < toks.len() && toks[i].is_punct('{') {
        i += 1;
        while i < toks.len() && !toks[i].is_punct('}') {
            i = parse_use_tree(toks, i, first_segment, out);
            if i < toks.len() && toks[i].is_punct(',') {
                i += 1;
            }
        }
        return (i + 1).min(toks.len());
    }
    // A simple path: `seg(::seg)*`, possibly ending in `::{...}`, `::*`, or
    // `as alias`.
    let mut first = first_segment.map(|s| s.to_string());
    let mut leaf: Option<String> = None;
    while i < toks.len() {
        let t = &toks[i];
        if t.kind == TokKind::Ident && !t.is_ident("as") {
            if first.is_none() {
                first = Some(t.text.clone());
            }
            leaf = Some(t.text.clone());
            i += 1;
            continue;
        }
        if t.is_punct(':') && i + 1 < toks.len() && toks[i + 1].is_punct(':') {
            i += 2;
            if i < toks.len() && toks[i].is_punct('{') {
                return parse_use_tree(toks, i, first.as_deref(), out);
            }
            if i < toks.len() && toks[i].is_punct('*') {
                return i + 1; // glob: nothing to record
            }
            continue;
        }
        if t.is_ident("as") && i + 1 < toks.len() && toks[i + 1].kind == TokKind::Ident {
            leaf = Some(toks[i + 1].text.clone());
            i += 2;
            continue;
        }
        break; // `;`, `,`, `}` — end of this tree
    }
    if let (Some(first), Some(leaf)) = (first, leaf) {
        out.insert(leaf, first);
    }
    if i < toks.len() && toks[i].is_punct(';') {
        i += 1;
    }
    i
}

/// Mark every token covered by `#[cfg(test)]` items or `#[test]` functions.
fn compute_test_mask(toks: &[Tok]) -> Vec<bool> {
    let mut mask = vec![false; toks.len()];
    let mut i = 0usize;
    while i < toks.len() {
        if toks[i].is_punct('#') && i + 1 < toks.len() && toks[i + 1].is_punct('[') {
            // Collect the attribute's tokens up to the matching `]`.
            let mut j = i + 2;
            let mut depth = 1usize;
            let mut inner: Vec<&str> = Vec::new();
            while j < toks.len() && depth > 0 {
                if toks[j].is_punct('[') {
                    depth += 1;
                } else if toks[j].is_punct(']') {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                inner.push(toks[j].text.as_str());
                j += 1;
            }
            let is_test_attr = inner == ["test"]
                || inner == ["cfg", "(", "test", ")"]
                || inner == ["cfg", "(", "all", "(", "test", ")", ")"];
            if is_test_attr && j < toks.len() {
                // Mark from the attribute through the end of the next item:
                // its first brace-balanced `{...}` block, or a `;` if the item
                // has no body (e.g. `#[cfg(test)] use ...;`).
                let mut k = j + 1;
                let mut end = toks.len().saturating_sub(1);
                let mut found = false;
                while k < toks.len() {
                    if toks[k].is_punct(';') {
                        end = k;
                        found = true;
                        break;
                    }
                    if toks[k].is_punct('{') {
                        let mut d = 1usize;
                        let mut m = k + 1;
                        while m < toks.len() && d > 0 {
                            if toks[m].is_punct('{') {
                                d += 1;
                            } else if toks[m].is_punct('}') {
                                d -= 1;
                            }
                            m += 1;
                        }
                        end = m.saturating_sub(1);
                        found = true;
                        break;
                    }
                    k += 1;
                }
                if found {
                    for slot in mask.iter_mut().take(end + 1).skip(i) {
                        *slot = true;
                    }
                    i = end + 1;
                    continue;
                }
            }
            i = j + 1;
            continue;
        }
        i += 1;
    }
    mask
}

/// Walk backwards from the `fn` keyword over qualifiers and attributes to the
/// first token of the item, returning its index.
fn item_start(toks: &[Tok], fn_idx: usize) -> usize {
    let mut i = fn_idx;
    loop {
        if i == 0 {
            return i;
        }
        let prev = &toks[i - 1];
        let is_qualifier = prev.is_ident("pub")
            || prev.is_ident("crate")
            || prev.is_ident("super")
            || prev.is_ident("in")
            || prev.is_ident("unsafe")
            || prev.is_ident("const")
            || prev.is_ident("async")
            || prev.is_ident("extern")
            || prev.is_punct('(')
            || prev.is_punct(')')
            || prev.kind == TokKind::Str;
        if is_qualifier {
            i -= 1;
            continue;
        }
        // An attribute ends with `]`: hop back to its `#[`.
        if prev.is_punct(']') {
            let mut depth = 1usize;
            let mut j = i - 1;
            while j > 0 && depth > 0 {
                j -= 1;
                if toks[j].is_punct(']') {
                    depth += 1;
                } else if toks[j].is_punct('[') {
                    depth -= 1;
                }
            }
            if j > 0 && toks[j - 1].is_punct('#') {
                i = j - 1;
                continue;
            }
            return i;
        }
        return i;
    }
}

/// Extract every `fn` item with its enclosing impl type and body span.
fn extract_fns(toks: &[Tok], test_mask: &[bool]) -> Vec<FnInfo> {
    let mut fns = Vec::new();
    // Stack of (impl_type, brace_depth_at_open).
    let mut impl_stack: Vec<(String, usize)> = Vec::new();
    let mut depth = 0usize;
    let mut i = 0usize;
    while i < toks.len() {
        let t = &toks[i];
        if t.is_punct('{') {
            depth += 1;
            i += 1;
            continue;
        }
        if t.is_punct('}') {
            depth = depth.saturating_sub(1);
            while impl_stack.last().is_some_and(|&(_, d)| d >= depth) {
                impl_stack.pop();
            }
            i += 1;
            continue;
        }
        if t.is_ident("impl") {
            // Scan to the body `{`, collecting path idents; the self type is
            // the last path segment head before `{`, after `for` when present.
            let mut j = i + 1;
            let mut angle = 0usize;
            let mut last_ident: Option<String> = None;
            let mut after_for: Option<String> = None;
            let mut saw_for = false;
            while j < toks.len() && !toks[j].is_punct('{') && !toks[j].is_punct(';') {
                let tj = &toks[j];
                if tj.is_punct('<') {
                    angle += 1;
                } else if tj.is_punct('>') {
                    angle = angle.saturating_sub(1);
                } else if tj.is_ident("for") && angle == 0 {
                    saw_for = true;
                } else if tj.kind == TokKind::Ident && angle == 0 && !tj.is_ident("where") {
                    if saw_for && after_for.is_none() {
                        after_for = Some(tj.text.clone());
                    }
                    last_ident = Some(tj.text.clone());
                }
                j += 1;
            }
            let ty = after_for.or(last_ident);
            if j < toks.len() && toks[j].is_punct('{') {
                if let Some(ty) = ty {
                    impl_stack.push((ty, depth));
                }
            }
            i = j;
            continue;
        }
        if t.is_ident("fn") && i + 1 < toks.len() && toks[i + 1].kind == TokKind::Ident {
            let name = toks[i + 1].text.clone();
            let start = item_start(toks, i);
            // The signature runs to the body `{` or a top-level `;` (trait
            // method). A `;` nested in brackets is part of an array type
            // (`-> [usize; N]`), not a terminator.
            let mut j = i + 2;
            let mut body = None;
            let mut end_line = toks[i].line;
            let mut nest = 0usize;
            while j < toks.len() {
                if toks[j].is_punct('(') || toks[j].is_punct('[') {
                    nest += 1;
                } else if toks[j].is_punct(')') || toks[j].is_punct(']') {
                    nest = nest.saturating_sub(1);
                }
                if toks[j].is_punct(';') && nest == 0 {
                    end_line = toks[j].line;
                    break;
                }
                if toks[j].is_punct('{') {
                    let open = j;
                    let mut d = 1usize;
                    let mut m = j + 1;
                    while m < toks.len() && d > 0 {
                        if toks[m].is_punct('{') {
                            d += 1;
                        } else if toks[m].is_punct('}') {
                            d -= 1;
                        }
                        m += 1;
                    }
                    let close = m.saturating_sub(1);
                    body = Some((open, close));
                    end_line = toks[close].line;
                    break;
                }
                j += 1;
            }
            fns.push(FnInfo {
                name,
                impl_type: impl_stack.last().map(|(ty, _)| ty.clone()),
                item_line: toks[start].line,
                body,
                end_line,
                is_test: test_mask.get(i).copied().unwrap_or(false),
            });
            // Keep scanning *inside* the body too (nested fns), so just step
            // past the `fn` keyword.
            i += 1;
            continue;
        }
        i += 1;
    }
    fns
}

/// Parse suppression directives out of the comment list.
///
/// Coverage: the directive's own line, the next code line, and — when the
/// next code line starts a `fn` item — that function's whole body.
fn parse_suppressions(
    comments: &[LineComment],
    toks: &[Tok],
    fns: &[FnInfo],
) -> (Vec<Suppression>, Vec<BadSuppression>) {
    let mut out = Vec::new();
    let mut bad = Vec::new();
    for c in comments {
        let Some(rest) = c.text.trim().strip_prefix("quadra-analyze:") else { continue };
        let rest = rest.trim();
        let Some(args) = rest.strip_prefix("allow(").and_then(|r| r.strip_suffix(')')) else {
            bad.push(BadSuppression {
                line: c.line,
                problem: "expected `allow(<pass>[:<check>], <reason>)`".to_string(),
            });
            continue;
        };
        let Some((target, reason)) = args.split_once(',') else {
            bad.push(BadSuppression {
                line: c.line,
                problem: "suppression is missing its mandatory reason".to_string(),
            });
            continue;
        };
        let reason = reason.trim();
        if reason.is_empty() {
            bad.push(BadSuppression {
                line: c.line,
                problem: "suppression is missing its mandatory reason".to_string(),
            });
            continue;
        }
        let target = target.trim();
        let (pass, check) = match target.split_once(':') {
            Some((p, ch)) => (p.trim().to_string(), Some(ch.trim().to_string())),
            None => (target.to_string(), None),
        };
        if !PASSES.contains(&pass.as_str()) {
            bad.push(BadSuppression { line: c.line, problem: format!("unknown pass `{pass}`") });
            continue;
        }
        // Next line holding a code token after the comment line.
        let next_code_line = toks.iter().map(|t| t.line).find(|&l| l > c.line).unwrap_or(c.line + 1);
        let mut covers = (c.line, next_code_line);
        // Whole-fn coverage when the directive sits in the item's header —
        // above the first attribute/qualifier or anywhere between the
        // attributes and the body `{` (e.g. after `#[inline]`).
        if let Some(f) = fns.iter().find(|f| {
            let sig_end = f.body.and_then(|(open, _)| toks.get(open)).map(|t| t.line).unwrap_or(f.end_line);
            (f.item_line..=sig_end).contains(&next_code_line)
        }) {
            covers = (c.line, f.end_line.max(next_code_line));
        }
        out.push(Suppression { pass, check, reason: reason.to_string(), line: c.line, covers });
    }
    (out, bad)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extracts_fns_with_impl_types() {
        let src = "impl Foo { fn a(&self) {} }\nimpl Bar for Baz { fn b(&self) {} }\nfn free() {}";
        let f = SourceFile::parse("x.rs", "c", src);
        let names: Vec<(&str, Option<&str>)> =
            f.fns.iter().map(|f| (f.name.as_str(), f.impl_type.as_deref())).collect();
        assert_eq!(names, vec![("a", Some("Foo")), ("b", Some("Baz")), ("free", None)]);
    }

    #[test]
    fn cfg_test_mod_is_masked() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn helper() {}\n}\n";
        let f = SourceFile::parse("x.rs", "c", src);
        let live = f.fns.iter().find(|x| x.name == "live").unwrap();
        let helper = f.fns.iter().find(|x| x.name == "helper").unwrap();
        assert!(!live.is_test);
        assert!(helper.is_test);
    }

    #[test]
    fn cfg_not_test_is_not_masked() {
        let src = "#[cfg(not(test))]\nfn live() {}\n";
        let f = SourceFile::parse("x.rs", "c", src);
        assert!(!f.fns[0].is_test);
    }

    #[test]
    fn suppression_parses_with_check_and_reason() {
        let src = "// quadra-analyze: allow(panic_path:indexing, bounds checked above)\nfn f() { }\n";
        let f = SourceFile::parse("x.rs", "c", src);
        assert_eq!(f.suppressions.len(), 1);
        let s = &f.suppressions[0];
        assert_eq!(s.pass, "panic_path");
        assert_eq!(s.check.as_deref(), Some("indexing"));
        assert_eq!(s.reason, "bounds checked above");
    }

    #[test]
    fn suppression_without_reason_is_bad() {
        let src = "// quadra-analyze: allow(panic_path)\nfn f() {}\n";
        let f = SourceFile::parse("x.rs", "c", src);
        assert!(f.suppressions.is_empty());
        assert_eq!(f.bad_suppressions.len(), 1);
    }

    #[test]
    fn fn_level_coverage_spans_whole_body() {
        let src =
            "// quadra-analyze: allow(panic_path, contract)\nfn f() {\n    let x = 1;\n    let y = 2;\n}\n";
        let f = SourceFile::parse("x.rs", "c", src);
        assert_eq!(f.suppressions[0].covers, (1, 5));
    }

    #[test]
    fn fn_level_coverage_skips_past_attributes() {
        let src =
            "// quadra-analyze: allow(panic_path, contract)\n#[inline]\npub fn f() {\n    let x = 1;\n}\n";
        let f = SourceFile::parse("x.rs", "c", src);
        assert_eq!(f.suppressions[0].covers, (1, 5));
    }

    #[test]
    fn fn_level_coverage_between_attribute_and_fn() {
        let src =
            "#[inline]\n// quadra-analyze: allow(panic_path, contract)\npub fn f() {\n    let x = 1;\n}\n";
        let f = SourceFile::parse("x.rs", "c", src);
        assert_eq!(f.suppressions[0].covers, (2, 5));
    }

    #[test]
    fn array_return_type_does_not_end_signature() {
        let src = "fn f() -> [usize; 2] {\n    let x = 1;\n    [x, x]\n}\n";
        let f = SourceFile::parse("x.rs", "c", src);
        assert!(f.fns[0].body.is_some());
        assert_eq!(f.fns[0].end_line, 4);
    }

    #[test]
    fn use_aliases_cover_plain_renamed_and_grouped_imports() {
        let src = "use quadra_core::MemoryProfiler;\n\
                   use crate::sync::lock_or_recover;\n\
                   use other_crate::module::thing as renamed;\n\
                   use std::sync::{Arc, Mutex, atomic::{AtomicU64, Ordering}};\n\
                   use quadra_nn::*;\n";
        let f = SourceFile::parse("x.rs", "c", src);
        assert_eq!(f.use_aliases.get("MemoryProfiler").map(String::as_str), Some("quadra_core"));
        assert_eq!(f.use_aliases.get("lock_or_recover").map(String::as_str), Some("crate"));
        assert_eq!(f.use_aliases.get("renamed").map(String::as_str), Some("other_crate"));
        assert_eq!(f.use_aliases.get("Arc").map(String::as_str), Some("std"));
        assert_eq!(f.use_aliases.get("Ordering").map(String::as_str), Some("std"));
        assert!(!f.use_aliases.contains_key("thing"), "`as` maps the alias, not the original leaf");
        assert!(!f.use_aliases.values().any(|v| v == "quadra_nn"), "globs record nothing");
    }

    #[test]
    fn enclosing_fn_prefers_innermost() {
        let src = "fn outer() {\n    fn inner() {\n        let x = 1;\n    }\n}\n";
        let f = SourceFile::parse("x.rs", "c", src);
        let idx = f.toks.iter().position(|t| t.is_ident("x")).unwrap();
        assert_eq!(f.enclosing_fn(idx).unwrap().name, "inner");
    }
}
