//! Incremental-run cache.
//!
//! The analyzer's passes are workspace-scoped (the lock graph spans crates),
//! so per-file result caching would be unsound: editing one file can change
//! findings in another. What *is* sound is whole-run reuse — if every input
//! file hashes identically and the config/version fingerprint matches, the
//! previous run's output is byte-for-byte the current run's output. The
//! cache therefore stores the exact report JSON and human text alongside a
//! content hash per file, and a hit replays them verbatim without re-lexing
//! anything.
//!
//! The cache lives in `target/` (default `target/analyze-cache.json`): a
//! disposable artifact, never committed, safe to delete at any time.

use crate::json::{self, Json};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// FNV-1a 64-bit — tiny, deterministic, dependency-free. Collisions would
/// need an adversarial workspace; this guards against stale caches, not
/// attackers.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// A persisted analysis run keyed by input hashes.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CacheFile {
    /// Hash of everything besides file contents that affects output:
    /// config, analyzer version, pass list.
    pub fingerprint: u64,
    /// Content hash per workspace-relative path.
    pub files: BTreeMap<String, u64>,
    /// The run's report JSON, verbatim.
    pub report_json: String,
    /// The run's human-readable text, verbatim.
    pub human: String,
}

impl CacheFile {
    /// Build a cache entry from a completed run.
    pub fn new(
        fingerprint: u64,
        sources: &[(String, String)],
        report_json: String,
        human: String,
    ) -> CacheFile {
        let files = sources.iter().map(|(path, content)| (path.clone(), fnv1a(content.as_bytes()))).collect();
        CacheFile { fingerprint, files, report_json, human }
    }

    /// True when this cached run is valid for the given inputs: same
    /// fingerprint and the exact same file set with identical content hashes
    /// (an added or deleted file is a mismatch, not just an edit).
    pub fn matches(&self, fingerprint: u64, sources: &[(String, String)]) -> bool {
        if self.fingerprint != fingerprint || self.files.len() != sources.len() {
            return false;
        }
        sources.iter().all(|(path, content)| self.files.get(path) == Some(&fnv1a(content.as_bytes())))
    }

    /// Parse a persisted cache file. Any structural problem is an error; the
    /// caller treats errors as a cache miss.
    pub fn from_json(text: &str) -> Result<CacheFile, String> {
        let doc = json::parse(text)?;
        if doc.get("tool").and_then(Json::as_str) != Some("quadra-analyze-cache") {
            return Err("not a quadra-analyze cache file".to_string());
        }
        // Hashes are hex strings: u64 values exceed the exact-integer range
        // of JSON's double representation.
        let fingerprint = doc
            .get("fingerprint")
            .and_then(Json::as_str)
            .and_then(parse_hex)
            .ok_or("cache missing `fingerprint`")?;
        let mut files = BTreeMap::new();
        for item in doc.get("files").and_then(Json::as_array).ok_or("cache missing `files`")? {
            let path = item.get("path").and_then(Json::as_str).ok_or("cache file entry missing `path`")?;
            let hash = item
                .get("hash")
                .and_then(Json::as_str)
                .and_then(parse_hex)
                .ok_or("cache file entry missing `hash`")?;
            files.insert(path.to_string(), hash);
        }
        let field = |k: &str| {
            doc.get(k).and_then(Json::as_str).map(str::to_string).ok_or(format!("cache missing `{k}`"))
        };
        Ok(CacheFile { fingerprint, files, report_json: field("report_json")?, human: field("human")? })
    }

    /// Serialize for persisting under `target/`.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        let _ = writeln!(out, "  \"schema\": 1,");
        let _ = writeln!(out, "  \"tool\": \"quadra-analyze-cache\",");
        let _ = writeln!(out, "  \"fingerprint\": \"{:016x}\",", self.fingerprint);
        out.push_str("  \"files\": [\n");
        for (i, (path, hash)) in self.files.iter().enumerate() {
            let comma = if i + 1 == self.files.len() { "" } else { "," };
            let _ = writeln!(out, "    {{\"path\": {}, \"hash\": \"{hash:016x}\"}}{comma}", json_str(path));
        }
        out.push_str("  ],\n");
        let _ = writeln!(out, "  \"report_json\": {},", json_str(&self.report_json));
        let _ = writeln!(out, "  \"human\": {}", json_str(&self.human));
        out.push_str("}\n");
        out
    }
}

/// Parse a 64-bit hex hash string.
fn parse_hex(s: &str) -> Option<u64> {
    u64::from_str_radix(s, 16).ok()
}

/// JSON-escape a string, quotes included (same escapes as the report writer).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sources() -> Vec<(String, String)> {
        vec![("a.rs".to_string(), "fn a() {}".to_string()), ("b.rs".to_string(), "fn b() {}".to_string())]
    }

    #[test]
    fn fnv1a_is_deterministic_and_spreads() {
        assert_eq!(fnv1a(b"hello"), fnv1a(b"hello"));
        assert_ne!(fnv1a(b"hello"), fnv1a(b"hellp"));
        assert_ne!(fnv1a(b""), fnv1a(b"\0"));
    }

    #[test]
    fn roundtrips_through_json() {
        let c =
            CacheFile::new(42, &sources(), "{\"x\": 1}\n".to_string(), "line one\nline two\n".to_string());
        let parsed = CacheFile::from_json(&c.to_json()).unwrap();
        assert_eq!(parsed, c);
    }

    #[test]
    fn matches_requires_identical_inputs() {
        let c = CacheFile::new(42, &sources(), String::new(), String::new());
        assert!(c.matches(42, &sources()));
        // Different fingerprint (config or version changed).
        assert!(!c.matches(43, &sources()));
        // Edited file.
        let mut edited = sources();
        edited[0].1.push(' ');
        assert!(!c.matches(42, &edited));
        // Deleted file.
        assert!(!c.matches(42, &sources()[..1]));
        // Added file.
        let mut added = sources();
        added.push(("c.rs".to_string(), String::new()));
        assert!(!c.matches(42, &added));
        // Renamed file with same content.
        let mut renamed = sources();
        renamed[0].0 = "z.rs".to_string();
        assert!(!c.matches(42, &renamed));
    }

    #[test]
    fn rejects_foreign_json() {
        assert!(CacheFile::from_json("{\"tool\": \"other\"}").is_err());
        assert!(CacheFile::from_json("garbage").is_err());
    }
}
