//! Coverage for the admission layer and routing engine: bounded-queue
//! shedding under overload, priority ordering, per-model isolation, adaptive
//! wait-budget convergence, and shutdown with queued-but-undispatched
//! requests.

use quadra_nn::{Layer, Linear, Relu, Sequential};
use quadra_serve::{
    AdmissionPolicy, BatchPolicy, InferenceServer, Priority, Router, ServeConfig, ServeError,
};
use quadra_tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

fn mlp(seed: u64) -> Sequential {
    let mut rng = StdRng::seed_from_u64(seed);
    Sequential::new(vec![
        Box::new(Linear::new(4, 8, true, &mut rng)),
        Box::new(Relu::new()),
        Box::new(Linear::new(8, 3, true, &mut rng)),
    ])
}

/// An identity layer slow enough that requests pile up behind it.
struct SleepIdentity(Duration);

impl Layer for SleepIdentity {
    fn forward(&mut self, x: &Tensor, _train: bool) -> Tensor {
        std::thread::sleep(self.0);
        x.clone()
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        grad_out.clone()
    }

    fn layer_type(&self) -> &'static str {
        "sleep_identity"
    }
}

fn slow_config(queue_capacity: Option<usize>, max_batch: usize) -> ServeConfig {
    ServeConfig {
        workers: 1,
        policy: BatchPolicy {
            max_batch_size: max_batch,
            max_wait: Duration::from_millis(1),
            ..BatchPolicy::default()
        },
        admission: AdmissionPolicy { queue_capacity, ..AdmissionPolicy::default() },
        ..ServeConfig::default()
    }
}

#[test]
fn overload_sheds_with_retry_after_and_serves_admitted() {
    let server = InferenceServer::start(slow_config(Some(2), 1), || {
        Box::new(SleepIdentity(Duration::from_millis(20)))
    })
    .unwrap();
    let client = server.client();

    // 1 executing + 1 in the batcher's hand + 2 queued = 4 in flight; the
    // rest of a rapid burst must be shed, not buffered.
    let mut pending = Vec::new();
    let mut sheds = 0u64;
    for i in 0..10 {
        match client.submit(Tensor::full(&[1, 2], i as f32)) {
            Ok(p) => pending.push((i, p)),
            Err(ServeError::Overloaded { retry_after }) => {
                sheds += 1;
                assert!(retry_after > Duration::ZERO, "retry_after must be a usable hint");
            }
            Err(e) => panic!("unexpected submit error: {e:?}"),
        }
    }
    assert!(sheds > 0, "a 10-deep burst into capacity 2 must shed");
    assert!(pending.len() >= 2, "the queue capacity must still admit work");

    // Every admitted request is still answered correctly.
    for (i, p) in pending {
        let response = p.wait().unwrap();
        assert_eq!(response.output.as_slice(), &[i as f32; 2]);
    }
    let metrics = server.shutdown();
    assert_eq!(metrics.shed_requests, sheds);
    assert_eq!(metrics.completed_requests + metrics.shed_requests, 10);
    assert_eq!(metrics.errored_requests, 0);
}

#[test]
fn interactive_class_is_served_before_queued_batch_class() {
    let server =
        InferenceServer::start(slow_config(None, 1), || Box::new(SleepIdentity(Duration::from_millis(10))))
            .unwrap();
    let client = server.client();
    let finished: Arc<Mutex<Vec<(Priority, Instant)>>> = Arc::new(Mutex::new(Vec::new()));

    // Fill the pipeline with batch-class work...
    let waiters: Vec<_> = (0..6)
        .map(|_| {
            let p = client.submit_with_priority(Tensor::ones(&[1, 2]), Priority::Batch).unwrap();
            let finished = Arc::clone(&finished);
            std::thread::spawn(move || {
                let response = p.wait().unwrap();
                finished.lock().unwrap().push((response.priority, Instant::now()));
            })
        })
        .collect();
    // ...then inject one interactive request while the backlog is deep.
    std::thread::sleep(Duration::from_millis(5));
    let p = client.submit_with_priority(Tensor::ones(&[1, 2]), Priority::Interactive).unwrap();
    let interactive_done = {
        let finished = Arc::clone(&finished);
        std::thread::spawn(move || {
            let response = p.wait().unwrap();
            finished.lock().unwrap().push((response.priority, Instant::now()));
        })
    };
    interactive_done.join().unwrap();
    for w in waiters {
        w.join().unwrap();
    }

    let finished = finished.lock().unwrap();
    let interactive_at = finished.iter().find(|(c, _)| *c == Priority::Interactive).map(|(_, t)| *t).unwrap();
    let last_batch_at =
        finished.iter().filter(|(c, _)| *c == Priority::Batch).map(|(_, t)| *t).max().unwrap();
    assert!(interactive_at < last_batch_at, "the interactive request must overtake queued batch-class work");
    let metrics = server.shutdown();
    assert_eq!(metrics.completed_interactive, 1);
    assert_eq!(metrics.completed_batch_class, 6);
}

#[test]
fn one_models_full_queue_does_not_block_another() {
    let router = Router::builder()
        .endpoint("slow", slow_config(Some(1), 1), || Box::new(SleepIdentity(Duration::from_millis(25))))
        .endpoint("fast", ServeConfig { workers: 1, ..ServeConfig::default() }, || Box::new(mlp(0)))
        .start()
        .unwrap();
    let client = router.client();

    // Saturate the slow endpoint until it sheds.
    let mut slow_pending = Vec::new();
    let mut saw_shed = false;
    for _ in 0..12 {
        match client.submit("slow", Tensor::ones(&[1, 2]), Priority::Interactive) {
            Ok(p) => slow_pending.push(p),
            Err(ServeError::Overloaded { .. }) => {
                saw_shed = true;
                break;
            }
            Err(e) => panic!("unexpected: {e:?}"),
        }
    }
    assert!(saw_shed, "slow endpoint must reach its admission limit");

    // The fast endpoint must keep serving immediately despite its neighbour's
    // saturated queue: well under the slow model's multi-batch backlog.
    let started = Instant::now();
    let response = client.infer("fast", Tensor::ones(&[1, 4])).unwrap();
    assert_eq!(response.output.shape(), &[1, 3]);
    assert!(
        started.elapsed() < Duration::from_millis(250),
        "fast endpoint stalled behind the slow one: {:?}",
        started.elapsed()
    );

    for p in slow_pending {
        let _ = p.wait().unwrap();
    }
    let metrics = router.shutdown();
    assert!(metrics.get("slow").unwrap().shed_requests >= 1);
    assert_eq!(metrics.get("fast").unwrap().shed_requests, 0);
    // Cross-model interference is bounded: the fast request may wait behind
    // ~one slow batch at the fair-share gate, never behind the slow model's
    // multi-batch backlog. The slow model's p50 is at least one of its own
    // batches, so "at most one batch of interference" is machine-relative:
    // fast p95 stays under ~2× slow p50, while queueing behind two or more
    // slow batches would push it past that.
    assert!(
        metrics.get("fast").unwrap().p95_latency_ms < 1.8 * metrics.get("slow").unwrap().p50_latency_ms,
        "fast endpoint ({:.2} ms p95) queued behind more than one slow batch (slow p50 {:.2} ms)",
        metrics.get("fast").unwrap().p95_latency_ms,
        metrics.get("slow").unwrap().p50_latency_ms
    );
    // Per-model latency windows: the slow model's 25 ms batches dominate its
    // own percentiles only.
    assert!(metrics.get("slow").unwrap().p50_latency_ms >= 20.0);
}

#[test]
fn unknown_model_is_rejected_before_admission() {
    let router = Router::builder()
        .endpoint("only", ServeConfig { workers: 1, ..ServeConfig::default() }, || Box::new(mlp(0)))
        .start()
        .unwrap();
    let client = router.client();
    let err = client.infer("missing", Tensor::ones(&[1, 4])).unwrap_err();
    assert_eq!(err, ServeError::UnknownModel("missing".to_string()));
    assert_eq!(client.models(), vec!["only".to_string()]);
    let _ = router.shutdown();
}

#[test]
fn duplicate_and_empty_endpoint_names_are_rejected() {
    let dup = Router::builder()
        .endpoint("m", ServeConfig { workers: 1, ..ServeConfig::default() }, || Box::new(mlp(0)))
        .endpoint("m", ServeConfig { workers: 1, ..ServeConfig::default() }, || Box::new(mlp(1)))
        .start();
    assert!(matches!(dup, Err(ServeError::BadInput(_))));
    let empty = Router::builder().start();
    assert!(matches!(empty, Err(ServeError::BadInput(_))));
    let unnamed = Router::builder()
        .endpoint("", ServeConfig { workers: 1, ..ServeConfig::default() }, || Box::new(mlp(0)))
        .start();
    assert!(matches!(unnamed, Err(ServeError::BadInput(_))));
    let zero_queue = Router::builder()
        .endpoint(
            "m",
            ServeConfig {
                workers: 1,
                admission: AdmissionPolicy { queue_capacity: Some(0), ..AdmissionPolicy::default() },
                ..ServeConfig::default()
            },
            || Box::new(mlp(0)),
        )
        .start();
    assert!(matches!(zero_queue, Err(ServeError::BadInput(_))));
}

#[test]
fn adaptive_wait_budget_converges_under_steady_load() {
    let config = ServeConfig {
        workers: 1,
        policy: BatchPolicy {
            max_batch_size: 8,
            max_wait: Duration::from_millis(25),
            adaptive_wait: true,
            ..BatchPolicy::default()
        },
        admission: AdmissionPolicy { queue_capacity: None, ..AdmissionPolicy::default() },
        ..ServeConfig::default()
    };
    let server =
        InferenceServer::start(config, || Box::new(SleepIdentity(Duration::from_millis(1)))).unwrap();
    let client = server.client();

    // Steady ~2000 req/s for a while: the budget must settle well below the
    // 25 ms cap (the arrival rate fills batches much faster than that).
    let drive = |n: usize| {
        let pending: Vec<_> = (0..n)
            .map(|_| {
                std::thread::sleep(Duration::from_micros(500));
                client.submit(Tensor::ones(&[1, 2])).unwrap()
            })
            .collect();
        for p in pending {
            let _ = p.wait().unwrap();
        }
    };
    drive(150);
    let mid = server.metrics().wait_budget_ms;
    drive(150);
    let late = server.metrics().wait_budget_ms;

    assert!(mid > 0.0, "budget gauge must be populated");
    assert!(mid < 25.0 * 0.8, "budget must adapt below the cap, got {mid} ms");
    assert!(late < 25.0 * 0.8, "budget must stay adapted, got {late} ms");
    // Converged: successive readings stay in the same regime rather than
    // oscillating across the [floor, cap] range.
    assert!((mid - late).abs() < 25.0 * 0.25, "budget did not converge: {mid} ms then {late} ms");
    let _ = server.shutdown();
}

#[test]
fn static_wait_budget_stays_at_max_wait() {
    let config = ServeConfig {
        workers: 1,
        policy: BatchPolicy {
            max_batch_size: 8,
            max_wait: Duration::from_millis(3),
            adaptive_wait: false,
            ..BatchPolicy::default()
        },
        ..ServeConfig::default()
    };
    let server = InferenceServer::start(config, || Box::new(mlp(0))).unwrap();
    let client = server.client();
    for _ in 0..20 {
        let _ = client.infer(Tensor::ones(&[1, 4])).unwrap();
    }
    let metrics = server.shutdown();
    assert!((metrics.wait_budget_ms - 3.0).abs() < 1e-9, "static budget is exactly max_wait");
}

#[test]
fn shutdown_answers_queued_but_undispatched_requests() {
    // A deep queue of slow single-sample batches: most requests still sit in
    // the admission queue when shutdown lands, yet all must be answered.
    let server = InferenceServer::start(slow_config(Some(64), 1), || {
        Box::new(SleepIdentity(Duration::from_millis(10)))
    })
    .unwrap();
    let client = server.client();
    let pending: Vec<_> = (0..8)
        .map(|i| client.submit_with_priority(Tensor::full(&[1, 2], i as f32), Priority::Batch).unwrap())
        .collect();
    let metrics = server.shutdown();
    assert_eq!(metrics.completed_requests, 8, "every admitted request drains through shutdown");
    for (i, p) in pending.into_iter().enumerate() {
        let response = p.wait().unwrap();
        assert_eq!(response.output.as_slice(), &[i as f32; 2]);
    }
    assert_eq!(client.submit(Tensor::ones(&[1, 2])).unwrap_err(), ServeError::ShuttingDown);
}

#[test]
fn response_carries_model_name_and_priority() {
    let server = InferenceServer::start(ServeConfig::default(), || Box::new(mlp(0))).unwrap();
    let client = server.client();
    let response =
        client.submit_with_priority(Tensor::ones(&[1, 4]), Priority::Batch).unwrap().wait().unwrap();
    assert_eq!(response.model, quadra_serve::DEFAULT_ENDPOINT);
    assert_eq!(response.priority, Priority::Batch);
    let metrics = server.shutdown();
    assert_eq!(metrics.model, quadra_serve::DEFAULT_ENDPOINT);
    assert_eq!(metrics.completed_batch_class, 1);
}
