//! A small training loop over in-memory datasets, with per-batch timing and
//! peak-memory tracking (the measurements reported in Table 3 of the paper).

use crate::layer::Layer;
use crate::loss::Loss;
use crate::metrics::accuracy;
use crate::optim::Optimizer;
use crate::scheduler::LrScheduler;
use quadra_tensor::Tensor;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::time::Instant;

/// Configuration of the training loop.
#[derive(Debug, Clone, Copy)]
pub struct TrainerConfig {
    /// Number of passes over the training set.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Shuffle samples between epochs.
    pub shuffle: bool,
    /// Seed for shuffling.
    pub seed: u64,
    /// Print one line per epoch to stdout when true.
    pub verbose: bool,
}

impl Default for TrainerConfig {
    fn default() -> Self {
        TrainerConfig { epochs: 10, batch_size: 64, shuffle: true, seed: 0, verbose: false }
    }
}

/// Statistics collected by [`Trainer::fit`].
#[derive(Debug, Clone, Default)]
pub struct TrainReport {
    /// Mean training loss per epoch.
    pub epoch_losses: Vec<f32>,
    /// Training accuracy per epoch.
    pub epoch_train_acc: Vec<f32>,
    /// Mean wall-clock milliseconds per training batch (forward + backward + step).
    pub train_time_per_batch_ms: f32,
    /// Mean wall-clock milliseconds per inference batch.
    pub test_time_per_batch_ms: f32,
    /// Peak bytes of cached activations observed across all batches.
    pub peak_activation_bytes: usize,
    /// Bytes of parameters + gradients of the trained model.
    pub param_bytes: usize,
    /// Bytes of optimizer state at the end of training.
    pub optimizer_state_bytes: usize,
}

impl TrainReport {
    /// Final (last-epoch) training loss.
    pub fn final_loss(&self) -> f32 {
        *self.epoch_losses.last().unwrap_or(&f32::NAN)
    }

    /// Final (last-epoch) training accuracy.
    pub fn final_train_acc(&self) -> f32 {
        *self.epoch_train_acc.last().unwrap_or(&0.0)
    }

    /// Total modelled training memory: parameters plus gradients, optimizer
    /// state and peak cached activations. This is the quantity plotted in
    /// Fig. 5 and reported as "Train Memory" in Table 3.
    pub fn total_train_memory_bytes(&self) -> usize {
        self.param_bytes + self.optimizer_state_bytes + self.peak_activation_bytes
    }
}

/// Mini-batch trainer for classification-style tasks.
pub struct Trainer {
    config: TrainerConfig,
    rng: StdRng,
}

impl Trainer {
    /// Create a trainer with the given configuration.
    pub fn new(config: TrainerConfig) -> Self {
        Trainer { rng: StdRng::seed_from_u64(config.seed), config }
    }

    /// The trainer configuration.
    pub fn config(&self) -> &TrainerConfig {
        &self.config
    }

    /// Train `model` on `(x, y)` with the given loss, optimizer and LR schedule.
    ///
    /// `x` is `[n, ...]`, `y` is `[n]` with integer class labels (as `f32`)
    /// for classification losses, or any target shape the loss accepts.
    #[allow(clippy::too_many_arguments)]
    pub fn fit(
        &mut self,
        model: &mut dyn Layer,
        loss_fn: &dyn Loss,
        optimizer: &mut dyn Optimizer,
        scheduler: &dyn LrScheduler,
        x: &Tensor,
        y: &Tensor,
        x_val: Option<(&Tensor, &Tensor)>,
    ) -> TrainReport {
        let n = x.shape()[0];
        assert!(n > 0, "empty training set");
        let mut report = TrainReport::default();
        let mut batch_times = Vec::new();
        let mut indices: Vec<usize> = (0..n).collect();

        for epoch in 0..self.config.epochs {
            optimizer.set_lr(scheduler.lr_at(epoch));
            if self.config.shuffle {
                indices.shuffle(&mut self.rng);
            }
            let mut epoch_loss = 0.0f32;
            let mut epoch_correct = 0.0f32;
            let mut batches = 0usize;
            for chunk in indices.chunks(self.config.batch_size) {
                let xb = x.select_rows(chunk).expect("batch rows");
                let yb = y.select_rows(chunk).expect("batch labels");
                let start = Instant::now();
                let logits = model.forward(&xb, true);
                report.peak_activation_bytes = report.peak_activation_bytes.max(model.cached_bytes());
                let (loss, grad) = loss_fn.compute(&logits, &yb);
                model.backward(&grad);
                {
                    let mut params = model.params_mut();
                    optimizer.step(&mut params);
                    optimizer.zero_grad(&mut params);
                }
                batch_times.push(start.elapsed().as_secs_f64() * 1e3);
                if logits.ndim() == 2 {
                    epoch_correct += accuracy(&logits, &yb) * chunk.len() as f32;
                }
                epoch_loss += loss * chunk.len() as f32;
                batches += 1;
            }
            let _ = batches;
            report.epoch_losses.push(epoch_loss / n as f32);
            report.epoch_train_acc.push(epoch_correct / n as f32);
            if self.config.verbose {
                let val_msg = match x_val {
                    Some((xv, yv)) => format!(" val_acc={:.4}", self.evaluate(model, xv, yv).0),
                    None => String::new(),
                };
                println!(
                    "epoch {:>3} | lr {:.5} | loss {:.4} | train_acc {:.4}{}",
                    epoch,
                    scheduler.lr_at(epoch),
                    report.epoch_losses.last().unwrap(),
                    report.epoch_train_acc.last().unwrap(),
                    val_msg
                );
            }
        }
        report.train_time_per_batch_ms =
            (batch_times.iter().sum::<f64>() / batch_times.len().max(1) as f64) as f32;
        report.param_bytes = model.params().iter().map(|p| p.nbytes()).sum();
        report.optimizer_state_bytes = optimizer.state_bytes();

        // Measure inference time on one pass of the training data (or val set).
        let (eval_x, eval_y) = x_val.unwrap_or((x, y));
        let t0 = Instant::now();
        let (_acc, eval_batches) = self.evaluate(model, eval_x, eval_y);
        report.test_time_per_batch_ms =
            (t0.elapsed().as_secs_f64() * 1e3 / eval_batches.max(1) as f64) as f32;
        report
    }

    /// Evaluate classification accuracy of `model` on `(x, y)`; returns the
    /// accuracy and the number of batches processed.
    pub fn evaluate(&self, model: &mut dyn Layer, x: &Tensor, y: &Tensor) -> (f32, usize) {
        let n = x.shape()[0];
        if n == 0 {
            return (0.0, 0);
        }
        let mut correct = 0.0f32;
        let mut batches = 0usize;
        let indices: Vec<usize> = (0..n).collect();
        for chunk in indices.chunks(self.config.batch_size) {
            let xb = x.select_rows(chunk).expect("batch rows");
            let yb = y.select_rows(chunk).expect("batch labels");
            let logits = model.forward(&xb, false);
            correct += accuracy(&logits, &yb) * chunk.len() as f32;
            batches += 1;
        }
        model.clear_cache();
        (correct / n as f32, batches)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activation::Relu;
    use crate::layer::Sequential;
    use crate::linear::Linear;
    use crate::loss::CrossEntropyLoss;
    use crate::optim::{Sgd, SgdConfig};
    use crate::scheduler::ConstantLr;
    use rand::Rng;

    /// A linearly separable 2-class problem in 2-D.
    fn toy_dataset(n: usize, seed: u64) -> (Tensor, Tensor) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut xs = Vec::with_capacity(n * 2);
        let mut ys = Vec::with_capacity(n);
        for _ in 0..n {
            let cls = rng.gen_range(0..2usize);
            let (cx, cy) = if cls == 0 { (-1.0, -1.0) } else { (1.0, 1.0) };
            xs.push(cx + rng.gen_range(-0.3..0.3));
            xs.push(cy + rng.gen_range(-0.3..0.3));
            ys.push(cls as f32);
        }
        (Tensor::from_vec(xs, &[n, 2]).unwrap(), Tensor::from_vec(ys, &[n]).unwrap())
    }

    #[test]
    fn trainer_fits_linearly_separable_data() {
        let mut rng = StdRng::seed_from_u64(10);
        let mut model = Sequential::new(vec![
            Box::new(Linear::new(2, 16, true, &mut rng)),
            Box::new(Relu::new()),
            Box::new(Linear::new(16, 2, true, &mut rng)),
        ]);
        let (x, y) = toy_dataset(200, 1);
        let (xv, yv) = toy_dataset(50, 2);
        let mut trainer = Trainer::new(TrainerConfig { epochs: 20, batch_size: 32, ..Default::default() });
        let mut opt = Sgd::new(SgdConfig { lr: 0.1, momentum: 0.9, weight_decay: 0.0, nesterov: false });
        let report = trainer.fit(
            &mut model,
            &CrossEntropyLoss::new(),
            &mut opt,
            &ConstantLr::new(0.1),
            &x,
            &y,
            Some((&xv, &yv)),
        );
        assert!(report.final_train_acc() > 0.95, "train acc {}", report.final_train_acc());
        let (val_acc, _) = trainer.evaluate(&mut model, &xv, &yv);
        assert!(val_acc > 0.9, "val acc {}", val_acc);
        // Loss should go down.
        assert!(report.final_loss() < report.epoch_losses[0]);
        // Memory/time bookkeeping populated.
        assert!(report.peak_activation_bytes > 0);
        assert!(report.param_bytes > 0);
        assert!(report.optimizer_state_bytes > 0);
        assert!(report.train_time_per_batch_ms > 0.0);
        assert!(report.test_time_per_batch_ms >= 0.0);
        assert!(report.total_train_memory_bytes() >= report.param_bytes);
        assert_eq!(report.epoch_losses.len(), 20);
        assert_eq!(trainer.config().epochs, 20);
    }

    #[test]
    fn evaluate_on_empty_set_is_zero() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut model = Sequential::new(vec![Box::new(Linear::new(2, 2, true, &mut rng))]);
        let trainer = Trainer::new(TrainerConfig::default());
        let (acc, batches) = trainer.evaluate(&mut model, &Tensor::zeros(&[0, 2]), &Tensor::zeros(&[0]));
        assert_eq!(acc, 0.0);
        assert_eq!(batches, 0);
    }

    #[test]
    fn default_report_final_values() {
        let r = TrainReport::default();
        assert!(r.final_loss().is_nan());
        assert_eq!(r.final_train_acc(), 0.0);
    }
}
