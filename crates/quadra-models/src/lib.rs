//! # quadra-models
//!
//! The model zoo of QuadraLib-rs: the first-order backbones evaluated in the
//! paper (VGG, CIFAR-style ResNet, MobileNetV1) expressed as
//! [`quadra_core::ModelConfig`] configuration files, plus the two task-specific
//! systems the evaluation needs — a small GAN for image generation (the SNGAN
//! stand-in, with proxy Inception-Score / FID metrics) and a grid-based
//! single-shot detector (the SSD stand-in) with mAP evaluation.
//!
//! Quadratic ("QuadraNN") variants of every backbone are produced by running
//! the configurations through [`quadra_core::AutoBuilder`]; see the examples
//! and the `quadra-bench` harnesses.

#![warn(missing_docs)]

mod gan;
mod genmetrics;
mod mobilenet;
mod resnet;
mod ssd;
mod vgg;

pub use gan::{Gan, GanConfig, GanReport};
pub use genmetrics::{frechet_distance_diag, inception_score, FeatureExtractor, GenerationMetrics};
pub use mobilenet::mobilenet_v1_config;
pub use resnet::{resnet20_config, resnet32_config, resnet_cifar_config};
pub use ssd::{DetectionOutput, Detector, DetectorConfig, MapReport};
pub use vgg::{vgg11_config, vgg16_config, vgg8_config, vgg_config, VggVariant};
