//! Batch normalisation over NCHW tensors.
//!
//! The paper's model-construction insights stress that batch normalisation is
//! "significantly important for QDNN to regulate the output activation values"
//! because second-order terms generate extreme values; the quadratic model
//! builders in `quadra-core` therefore insert this layer after every quadratic
//! convolution by default.

use crate::layer::Layer;
use crate::param::Param;
use quadra_tensor::Tensor;

/// Batch normalisation over the channel axis of an NCHW tensor.
pub struct BatchNorm2d {
    gamma: Param,
    beta: Param,
    running_mean: Tensor,
    running_var: Tensor,
    momentum: f32,
    eps: f32,
    channels: usize,
    // Cached for backward.
    cached_xhat: Option<Tensor>,
    cached_inv_std: Option<Vec<f32>>,
    last_was_train: bool,
}

impl BatchNorm2d {
    /// Create a batch-norm layer for `channels` channels with default
    /// momentum 0.1 and epsilon 1e-5.
    pub fn new(channels: usize) -> Self {
        BatchNorm2d {
            gamma: Param::new_no_decay("bn.gamma", Tensor::ones(&[channels])),
            beta: Param::new_no_decay("bn.beta", Tensor::zeros(&[channels])),
            running_mean: Tensor::zeros(&[channels]),
            running_var: Tensor::ones(&[channels]),
            momentum: 0.1,
            eps: 1e-5,
            channels,
            cached_xhat: None,
            cached_inv_std: None,
            last_was_train: true,
        }
    }

    /// Number of normalised channels.
    pub fn channels(&self) -> usize {
        self.channels
    }

    /// The running (inference-time) mean per channel.
    pub fn running_mean(&self) -> &Tensor {
        &self.running_mean
    }

    /// The running (inference-time) variance per channel.
    pub fn running_var(&self) -> &Tensor {
        &self.running_var
    }
}

impl Layer for BatchNorm2d {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        assert_eq!(x.ndim(), 4, "BatchNorm2d expects NCHW input");
        let (n, c, h, w) = (x.shape()[0], x.shape()[1], x.shape()[2], x.shape()[3]);
        assert_eq!(c, self.channels, "channel mismatch in BatchNorm2d");
        let m = (n * h * w) as f32;
        let src = x.as_slice();
        let mut out = Tensor::zeros(x.shape());
        let mut xhat = Tensor::zeros(x.shape());
        let mut inv_stds = vec![0.0f32; c];
        let gamma = self.gamma.value.as_slice().to_vec();
        let beta = self.beta.value.as_slice().to_vec();

        for ci in 0..c {
            let (mean, var) = if train {
                // Two-pass mean/variance: the single-pass E[x²]−E[x]² form
                // cancels catastrophically for large-offset inputs (it needed a
                // `.max(0.0)` clamp to paper over negative variance).
                let mut sum = 0.0f32;
                for ni in 0..n {
                    let base = (ni * c + ci) * h * w;
                    for &v in &src[base..base + h * w] {
                        sum += v;
                    }
                }
                let mean = sum / m;
                let mut sq_dev = 0.0f32;
                for ni in 0..n {
                    let base = (ni * c + ci) * h * w;
                    for &v in &src[base..base + h * w] {
                        let d = v - mean;
                        sq_dev += d * d;
                    }
                }
                // Normalisation uses the biased batch variance; the running
                // (inference) variance uses the unbiased m/(m−1) estimate, as
                // in PyTorch. A single-element batch has no unbiased variance
                // estimate at all, so it must not touch the running statistics
                // (blending in the meaningless 0 would decay running_var
                // toward zero and blow up eval-mode outputs).
                let var = sq_dev / m;
                if m > 1.0 {
                    let rm = self.running_mean.as_mut_slice();
                    let rv = self.running_var.as_mut_slice();
                    rm[ci] = (1.0 - self.momentum) * rm[ci] + self.momentum * mean;
                    rv[ci] = (1.0 - self.momentum) * rv[ci] + self.momentum * (sq_dev / (m - 1.0));
                }
                (mean, var)
            } else {
                (self.running_mean.as_slice()[ci], self.running_var.as_slice()[ci])
            };
            let inv_std = 1.0 / (var + self.eps).sqrt();
            inv_stds[ci] = inv_std;
            let g = gamma[ci];
            let b = beta[ci];
            let xh = xhat.as_mut_slice();
            let o = out.as_mut_slice();
            for ni in 0..n {
                let base = (ni * c + ci) * h * w;
                for i in base..base + h * w {
                    let v = (src[i] - mean) * inv_std;
                    xh[i] = v;
                    o[i] = g * v + b;
                }
            }
        }
        self.cached_xhat = Some(xhat);
        self.cached_inv_std = Some(inv_stds);
        self.last_was_train = train;
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let xhat = self.cached_xhat.take().expect("backward called before forward");
        let inv_stds = self.cached_inv_std.take().expect("backward called before forward");
        let (n, c, h, w) =
            (grad_out.shape()[0], grad_out.shape()[1], grad_out.shape()[2], grad_out.shape()[3]);
        let m = (n * h * w) as f32;
        let g = grad_out.as_slice();
        let xh = xhat.as_slice();
        let gamma = self.gamma.value.as_slice().to_vec();
        let mut grad_in = Tensor::zeros(grad_out.shape());
        let gi = grad_in.as_mut_slice();
        let mut dgamma = vec![0.0f32; c];
        let mut dbeta = vec![0.0f32; c];

        for ci in 0..c {
            // First accumulate per-channel sums.
            let mut sum_dy = 0.0f32;
            let mut sum_dy_xhat = 0.0f32;
            for ni in 0..n {
                let base = (ni * c + ci) * h * w;
                for i in base..base + h * w {
                    sum_dy += g[i];
                    sum_dy_xhat += g[i] * xh[i];
                }
            }
            dgamma[ci] = sum_dy_xhat;
            dbeta[ci] = sum_dy;
            let scale = gamma[ci] * inv_stds[ci];
            if self.last_was_train {
                let mean_dy = sum_dy / m;
                let mean_dy_xhat = sum_dy_xhat / m;
                for ni in 0..n {
                    let base = (ni * c + ci) * h * w;
                    for i in base..base + h * w {
                        gi[i] = scale * (g[i] - mean_dy - xh[i] * mean_dy_xhat);
                    }
                }
            } else {
                // In eval mode the statistics are constants.
                for ni in 0..n {
                    let base = (ni * c + ci) * h * w;
                    for i in base..base + h * w {
                        gi[i] = scale * g[i];
                    }
                }
            }
        }
        self.gamma.accumulate_grad(&Tensor::from_vec(dgamma, &[c]).expect("shape"));
        self.beta.accumulate_grad(&Tensor::from_vec(dbeta, &[c]).expect("shape"));
        grad_in
    }

    fn params(&self) -> Vec<&Param> {
        vec![&self.gamma, &self.beta]
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.gamma, &mut self.beta]
    }

    fn buffers(&self) -> Vec<(&'static str, &Tensor)> {
        vec![("bn.running_mean", &self.running_mean), ("bn.running_var", &self.running_var)]
    }

    fn buffers_mut(&mut self) -> Vec<(&'static str, &mut Tensor)> {
        vec![("bn.running_mean", &mut self.running_mean), ("bn.running_var", &mut self.running_var)]
    }

    fn cached_bytes(&self) -> usize {
        self.cached_xhat.as_ref().map(|t| t.nbytes()).unwrap_or(0)
            + self.cached_inv_std.as_ref().map(|v| v.len() * 4).unwrap_or(0)
    }

    fn clear_cache(&mut self) {
        self.cached_xhat = None;
        self.cached_inv_std = None;
    }

    fn layer_type(&self) -> &'static str {
        "batchnorm2d"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quadra_autograd::{check_close, numeric_gradient};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(3)
    }

    #[test]
    fn normalises_to_zero_mean_unit_variance() {
        let mut r = rng();
        let mut bn = BatchNorm2d::new(3);
        let x = Tensor::randn(&[8, 3, 4, 4], 5.0, 3.0, &mut r);
        let y = bn.forward(&x, true);
        // Per-channel mean ~0, std ~1.
        for c in 0..3 {
            let mut vals = Vec::new();
            for n in 0..8 {
                for h in 0..4 {
                    for w in 0..4 {
                        vals.push(y.at(&[n, c, h, w]));
                    }
                }
            }
            let mean: f32 = vals.iter().sum::<f32>() / vals.len() as f32;
            let var: f32 = vals.iter().map(|v| (v - mean).powi(2)).sum::<f32>() / vals.len() as f32;
            assert!(mean.abs() < 1e-4, "mean {}", mean);
            assert!((var - 1.0).abs() < 1e-2, "var {}", var);
        }
        assert_eq!(bn.channels(), 3);
        assert_eq!(bn.params().len(), 2);
    }

    #[test]
    fn running_stats_track_batch_stats() {
        let mut r = rng();
        let mut bn = BatchNorm2d::new(2);
        let x = Tensor::randn(&[16, 2, 8, 8], 2.0, 1.5, &mut r);
        for _ in 0..50 {
            bn.forward(&x, true);
        }
        // With repeated identical batches the running stats converge to the batch stats.
        assert!((bn.running_mean().as_slice()[0] - 2.0).abs() < 0.2);
        assert!((bn.running_var().as_slice()[0] - 2.25).abs() < 0.4);
        // Eval mode output should then be close to the train-mode output.
        let y_train = bn.forward(&x, true);
        let y_eval = bn.forward(&x, false);
        assert!(y_train.max_abs_diff(&y_eval).unwrap() < 0.2);
    }

    #[test]
    fn affine_parameters_scale_and_shift() {
        let mut bn = BatchNorm2d::new(1);
        bn.params_mut()[0].value.fill(2.0); // gamma
        bn.params_mut()[1].value.fill(1.0); // beta
        let x = Tensor::from_vec(vec![-1.0, 1.0, -1.0, 1.0], &[1, 1, 2, 2]).unwrap();
        let y = bn.forward(&x, true);
        // x_hat = ±1, so y = ±2 + 1.
        assert!((y.at(&[0, 0, 0, 0]) - (-1.0)).abs() < 1e-3);
        assert!((y.at(&[0, 0, 0, 1]) - 3.0).abs() < 1e-3);
    }

    #[test]
    fn backward_input_gradcheck() {
        let mut r = rng();
        let mut bn = BatchNorm2d::new(2);
        // Random affine so the test exercises gamma/beta too.
        bn.params_mut()[0].value.copy_from(&Tensor::from_slice(&[1.3, 0.7])).unwrap();
        bn.params_mut()[1].value.copy_from(&Tensor::from_slice(&[0.2, -0.1])).unwrap();
        let x = Tensor::randn(&[3, 2, 3, 3], 0.0, 1.0, &mut r);
        let y = bn.forward(&x, true);
        // Use a fixed random "loss weight" so the loss isn't symmetric.
        let lw = Tensor::randn(y.shape(), 0.0, 1.0, &mut r);
        let gin = bn.backward(&lw);

        let gamma = Tensor::from_slice(&[1.3, 0.7]);
        let beta = Tensor::from_slice(&[0.2, -0.1]);
        let lw2 = lw.clone();
        let f = move |t: &Tensor| {
            // recompute batch norm forward from scratch
            let (n, c, h, w) = (t.shape()[0], t.shape()[1], t.shape()[2], t.shape()[3]);
            let m = (n * h * w) as f32;
            let mut loss = 0.0f32;
            for ci in 0..c {
                let mut sum = 0.0;
                let mut sq = 0.0;
                for ni in 0..n {
                    for hi in 0..h {
                        for wi in 0..w {
                            let v = t.at(&[ni, ci, hi, wi]);
                            sum += v;
                            sq += v * v;
                        }
                    }
                }
                let mean = sum / m;
                let var = (sq / m - mean * mean).max(0.0);
                let inv = 1.0 / (var + 1e-5).sqrt();
                for ni in 0..n {
                    for hi in 0..h {
                        for wi in 0..w {
                            let xh = (t.at(&[ni, ci, hi, wi]) - mean) * inv;
                            let y = gamma.as_slice()[ci] * xh + beta.as_slice()[ci];
                            loss += y * lw2.at(&[ni, ci, hi, wi]);
                        }
                    }
                }
            }
            loss
        };
        let numeric = numeric_gradient(f, &x, 1e-2);
        let report = check_close(&gin, &numeric);
        assert!(report.passes(5e-2), "{:?}", report);
    }

    #[test]
    fn running_var_uses_unbiased_estimate() {
        let mut bn = BatchNorm2d::new(1);
        // One channel, m = 4 values with mean 2.5: biased var = 1.25,
        // unbiased var = 5/3.
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[4, 1, 1, 1]).unwrap();
        bn.forward(&x, true);
        let expected = 0.9 * 1.0 + 0.1 * (5.0 / 3.0);
        assert!((bn.running_var().as_slice()[0] - expected).abs() < 1e-6);
        // m == 1: no unbiased estimate exists, so the running statistics must
        // stay untouched (not decay toward the meaningless batch variance 0).
        let mut bn1 = BatchNorm2d::new(1);
        let single = Tensor::from_vec(vec![3.0], &[1, 1, 1, 1]).unwrap();
        bn1.forward(&single, true);
        assert_eq!(bn1.running_mean().as_slice()[0], 0.0);
        assert_eq!(bn1.running_var().as_slice()[0], 1.0);
    }

    #[test]
    fn two_pass_variance_survives_large_offsets() {
        // With mean ≈ 4096 and tiny spread, E[x²]−E[x]² in f32 loses all the
        // signal (the clamp used to return 0 and inv_std exploded to 1/√eps).
        let vals = vec![4096.0, 4096.25, 4096.5, 4096.75];
        let x = Tensor::from_vec(vals.clone(), &[4, 1, 1, 1]).unwrap();
        let mut bn = BatchNorm2d::new(1);
        let y = bn.forward(&x, true);
        let mean: f32 = vals.iter().sum::<f32>() / 4.0;
        let var: f32 = vals.iter().map(|v| (v - mean).powi(2)).sum::<f32>() / 4.0;
        let inv = 1.0 / (var + 1e-5).sqrt();
        for (i, &v) in vals.iter().enumerate() {
            let expected = (v - mean) * inv;
            assert!(
                (y.as_slice()[i] - expected).abs() < 1e-3,
                "sample {}: got {}, expected {}",
                i,
                y.as_slice()[i],
                expected
            );
        }
    }

    #[test]
    fn exposes_running_stats_as_named_buffers() {
        let mut bn = BatchNorm2d::new(2);
        let x = Tensor::randn(&[4, 2, 3, 3], 1.0, 2.0, &mut rng());
        bn.forward(&x, true);
        let buffers = bn.buffers();
        assert_eq!(buffers.len(), 2);
        assert_eq!(buffers[0].0, "bn.running_mean");
        assert_eq!(buffers[1].0, "bn.running_var");
        assert_eq!(buffers[0].1.as_slice(), bn.running_mean().as_slice());
        let mut bn2 = BatchNorm2d::new(2);
        for (src, (name, dst)) in bn.buffers().iter().map(|(_, t)| (*t).clone()).zip(bn2.buffers_mut()) {
            assert!(name.starts_with("bn.running_"));
            dst.copy_from(&src).unwrap();
        }
        assert_eq!(bn2.running_var().as_slice(), bn.running_var().as_slice());
    }

    #[test]
    fn cache_lifecycle_and_eval_backward() {
        let mut r = rng();
        let mut bn = BatchNorm2d::new(2);
        let x = Tensor::randn(&[2, 2, 2, 2], 0.0, 1.0, &mut r);
        let _ = bn.forward(&x, true);
        assert!(bn.cached_bytes() > 0);
        bn.clear_cache();
        assert_eq!(bn.cached_bytes(), 0);
        // Eval-mode backward path.
        let y = bn.forward(&x, false);
        let gin = bn.backward(&Tensor::ones_like(&y));
        assert_eq!(gin.shape(), x.shape());
        assert!(!gin.has_non_finite());
        assert_eq!(bn.layer_type(), "batchnorm2d");
    }
}
