//! Atomics-ordering audit.
//!
//! In crates listed in `atomics_crates`, two patterns are findings:
//!
//! - **rmw** — a `.load(...)` followed by a `.store(...)` on the same
//!   receiver chain within one function. Whatever the orderings, the
//!   compute-between window loses updates under concurrency: two threads
//!   both load, both compute, and one store silently overwrites the other.
//!   The fix is a single atomic RMW (`fetch_update`, `fetch_add`, a CAS
//!   loop) or a documented single-writer invariant via a suppression.
//! - **relaxed-fetch** — `fetch_add`/`fetch_sub`/`fetch_or`/`fetch_and`/
//!   `fetch_xor` with `Ordering::Relaxed`. Relaxed RMW is sound only for
//!   monotonic counters that publish nothing; each such cell must be
//!   allowlisted with a reasoned suppression so the invariant is on record.

use crate::config::AnalyzeConfig;
use crate::lexer::TokKind;
use crate::report::Finding;
use crate::source::SourceFile;
use std::collections::BTreeMap;

/// Relaxed-ordering RMW methods that only monotonic counters may use.
const FETCH_OPS: [&str; 5] = ["fetch_add", "fetch_sub", "fetch_or", "fetch_and", "fetch_xor"];

/// Run the pass over one file.
pub fn run(file: &SourceFile, cfg: &AnalyzeConfig, findings: &mut Vec<Finding>) {
    if !cfg.atomics_crates.iter().any(|c| c == &file.crate_name) {
        return;
    }
    let toks = &file.toks;
    for f in &file.fns {
        if f.is_test {
            continue;
        }
        let Some((open, close)) = f.body else { continue };
        // First `.load(` line per receiver chain, in this fn.
        let mut loaded: BTreeMap<String, u32> = BTreeMap::new();
        let mut reported_rmw: BTreeMap<String, ()> = BTreeMap::new();
        let mut i = open;
        while i < close {
            let t = &toks[i];
            let is_method_call = t.kind == TokKind::Ident
                && i > 0
                && toks[i - 1].is_punct('.')
                && i < close
                && toks[i + 1].is_punct('(');
            if !is_method_call || file.is_test_tok(i) {
                i += 1;
                continue;
            }
            let name = t.text.as_str();
            if name == "load" {
                if let Some(chain) = receiver_chain(file, i - 1) {
                    loaded.entry(chain).or_insert(t.line);
                }
            } else if name == "store" {
                if let Some(chain) = receiver_chain(file, i - 1) {
                    if let Some(&load_line) = loaded.get(&chain) {
                        if reported_rmw.insert(chain.clone(), ()).is_none() {
                            findings.push(finding(
                                file,
                                "rmw",
                                t.line,
                                format!(
                                    "`{chain}` is loaded (line {load_line}) then stored in `{}`: \
                                     concurrent updates lose writes; use a single atomic RMW \
                                     (`fetch_update`/CAS) or document the single-writer invariant",
                                    f.name
                                ),
                            ));
                        }
                    }
                }
            } else if FETCH_OPS.contains(&name) && call_args_mention_relaxed(file, i + 1, close) {
                findings.push(finding(
                    file,
                    "relaxed-fetch",
                    t.line,
                    format!(
                        "`.{name}(.., Ordering::Relaxed)` in `{}`: Relaxed RMW is sound only for \
                         monotonic counters that publish no other memory — allowlist with a \
                         reasoned suppression or strengthen the ordering",
                        f.name
                    ),
                ));
            }
            i += 1;
        }
    }
}

fn finding(file: &SourceFile, check: &str, line: u32, message: String) -> Finding {
    Finding {
        pass: "atomics".to_string(),
        check: check.to_string(),
        file: file.path.clone(),
        line,
        message,
        snippet: file.line_text(line).to_string(),
        suppressed_reason: None,
    }
}

/// The dotted receiver chain ending at the `.` before the method name, e.g.
/// `self.ewma_batch_us.load(..)` → `self.ewma_batch_us`. `None` when the
/// receiver is not a simple path (a call result, an index expression).
fn receiver_chain(file: &SourceFile, dot_idx: usize) -> Option<String> {
    let toks = &file.toks;
    let mut chain: Vec<String> = Vec::new();
    let mut i = dot_idx; // points at the `.`
    loop {
        if i == 0 {
            break;
        }
        let prev = &toks[i - 1];
        if prev.kind == TokKind::Ident {
            chain.push(prev.text.clone());
            if i >= 2 && toks[i - 2].is_punct('.') {
                i -= 2;
                continue;
            }
        }
        break;
    }
    if chain.is_empty() {
        return None;
    }
    chain.reverse();
    Some(chain.join("."))
}

/// True when the call's argument list (starting at `open_paren`) names the
/// `Relaxed` ordering.
fn call_args_mention_relaxed(file: &SourceFile, open_paren: usize, close: usize) -> bool {
    let toks = &file.toks;
    if open_paren > close || !toks[open_paren].is_punct('(') {
        return false;
    }
    let mut depth = 1usize;
    let mut i = open_paren + 1;
    while i <= close && depth > 0 {
        if toks[i].is_punct('(') {
            depth += 1;
        } else if toks[i].is_punct(')') {
            depth -= 1;
        } else if toks[i].is_ident("Relaxed") {
            return true;
        }
        i += 1;
    }
    false
}
