//! The completion pump: one thread that turns blocking
//! [`ResponseHandle`]s into event-loop wakeups.
//!
//! `quadra-serve` hands back one mpsc receiver per request; std channels
//! cannot be multiplexed by a poller, so the gateway bridges them with a
//! single thread that polls every in-flight handle with
//! [`ResponseHandle::try_wait`], parks briefly between scans, and publishes
//! settled results to a shared completion list before signalling the event
//! loop's [`Waker`](crate::sys::Waker). The scan interval (200 µs) bounds
//! the added completion latency at well under the serving engine's own
//! batching wait, and the pump runs on its own core so the event loop never
//! blocks on inference.

use crate::sys::Waker;
use quadra_serve::{InferResponse, ResponseHandle, ServeError};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// How long the pump parks between polling sweeps while handles are in
/// flight.
const SCAN_PARK: Duration = Duration::from_micros(200);

/// A request the event loop handed to the pump.
struct InFlight {
    /// Event-loop token of the owning connection.
    token: u64,
    /// Wire correlation id to echo in the response frame.
    correlation_id: u64,
    handle: ResponseHandle,
}

/// A settled request travelling pump → event loop.
pub(crate) struct Completion {
    /// Event-loop token of the owning connection (which may have closed in
    /// the meantime; the loop then drops the completion).
    pub token: u64,
    /// Wire correlation id to echo.
    pub correlation_id: u64,
    /// The serving engine's verdict.
    pub result: Result<InferResponse, ServeError>,
}

struct Shared {
    /// Newly submitted requests, handed from the event loop to the pump.
    incoming: Mutex<Vec<InFlight>>,
    /// Signalled on submission and shutdown.
    cv: Condvar,
    /// Settled results awaiting pickup by the event loop.
    completions: Mutex<Vec<Completion>>,
    /// In-flight count: submitted and not yet published. The drain path
    /// spins on this reaching zero.
    outstanding: AtomicUsize,
    shutdown: AtomicBool,
    waker: Arc<Waker>,
}

/// Handle to the pump thread.
pub(crate) struct CompletionPump {
    shared: Arc<Shared>,
    thread: Option<JoinHandle<()>>,
}

impl CompletionPump {
    /// Spawn the pump; settled completions are announced through `waker`.
    pub fn start(waker: Arc<Waker>) -> CompletionPump {
        let shared = Arc::new(Shared {
            incoming: Mutex::new(Vec::new()),
            cv: Condvar::new(),
            completions: Mutex::new(Vec::new()),
            outstanding: AtomicUsize::new(0),
            shutdown: AtomicBool::new(false),
            waker,
        });
        let for_thread = Arc::clone(&shared);
        let thread = std::thread::Builder::new()
            .name("gateway-pump".into())
            .spawn(move || run(for_thread))
            .expect("spawning the completion pump thread");
        CompletionPump { shared, thread: Some(thread) }
    }

    /// Hand a submitted request's handle to the pump.
    pub fn submit(&self, token: u64, correlation_id: u64, handle: ResponseHandle) {
        self.shared.outstanding.fetch_add(1, Ordering::AcqRel);
        let mut incoming = self.shared.incoming.lock().expect("pump incoming lock");
        incoming.push(InFlight { token, correlation_id, handle });
        drop(incoming);
        self.shared.cv.notify_one();
    }

    /// Take every completion published since the last call. Invoked by the
    /// event loop after a waker wakeup (and once per drain sweep).
    pub fn take_completions(&self) -> Vec<Completion> {
        let mut completions = self.shared.completions.lock().expect("pump completions lock");
        std::mem::take(&mut *completions)
    }

    /// Requests submitted but not yet published as completions.
    pub fn outstanding(&self) -> usize {
        self.shared.outstanding.load(Ordering::Acquire)
    }

    /// Stop the pump thread. Handles still in flight are dropped, which
    /// abandons their responses — callers drain first (see the gateway's
    /// shutdown ordering).
    pub fn shutdown(mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.cv.notify_one();
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

fn run(shared: Arc<Shared>) {
    let mut pending: Vec<InFlight> = Vec::new();
    loop {
        // Pick up new submissions; park on the condvar when idle, park with
        // a short timeout when handles are in flight (try_wait is a poll, so
        // the pump must keep sweeping).
        {
            let mut incoming = shared.incoming.lock().expect("pump incoming lock");
            loop {
                pending.append(&mut incoming);
                if shared.shutdown.load(Ordering::Acquire) {
                    return;
                }
                if !pending.is_empty() {
                    break;
                }
                let (guard, _) =
                    shared.cv.wait_timeout(incoming, Duration::from_millis(50)).expect("pump condvar");
                incoming = guard;
            }
        }

        // Sweep the in-flight set; publish whatever settled.
        let mut settled: Vec<Completion> = Vec::new();
        pending.retain_mut(|inflight| match inflight.handle.try_wait() {
            None => true,
            Some(result) => {
                settled.push(Completion {
                    token: inflight.token,
                    correlation_id: inflight.correlation_id,
                    result,
                });
                false
            }
        });
        if !settled.is_empty() {
            let count = settled.len();
            let mut completions = shared.completions.lock().expect("pump completions lock");
            completions.append(&mut settled);
            drop(completions);
            // Publish *before* decrementing: a drain loop that observes
            // outstanding == 0 must find every completion already visible.
            shared.outstanding.fetch_sub(count, Ordering::AcqRel);
            shared.waker.notify();
        }
        if !pending.is_empty() {
            std::thread::sleep(SCAN_PARK);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quadra_serve::{InferenceServer, ServeConfig};
    use quadra_tensor::Tensor;
    use std::time::Instant;

    fn tiny_server() -> InferenceServer {
        use quadra_nn::{Layer, Linear, Sequential};
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        InferenceServer::start(ServeConfig { workers: 1, ..ServeConfig::default() }, || {
            let mut rng = StdRng::seed_from_u64(0);
            Box::new(Sequential::new(vec![Box::new(Linear::new(4, 2, true, &mut rng)) as Box<dyn Layer>]))
        })
        .unwrap()
    }

    #[test]
    fn pump_publishes_completions_and_wakes_the_waker() {
        let server = tiny_server();
        let client = server.client();
        let waker = Arc::new(Waker::new().unwrap());
        let pump = CompletionPump::start(Arc::clone(&waker));

        let handle = client.submit(Tensor::ones(&[1, 4])).unwrap();
        pump.submit(42, 7, handle);

        let deadline = Instant::now() + Duration::from_secs(10);
        let mut got = Vec::new();
        while got.is_empty() {
            assert!(Instant::now() < deadline, "completion never arrived");
            got = pump.take_completions();
            std::thread::sleep(Duration::from_millis(1));
        }
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].token, 42);
        assert_eq!(got[0].correlation_id, 7);
        let response = got[0].result.as_ref().expect("inference succeeds");
        assert_eq!(response.output.shape(), &[1, 2]);
        assert_eq!(pump.outstanding(), 0);

        pump.shutdown();
        drop(client);
        let _ = server.shutdown();
    }

    #[test]
    fn outstanding_counts_only_unsettled_requests() {
        let server = tiny_server();
        let client = server.client();
        let waker = Arc::new(Waker::new().unwrap());
        let pump = CompletionPump::start(Arc::clone(&waker));
        assert_eq!(pump.outstanding(), 0);

        for id in 0..4 {
            let handle = client.submit(Tensor::ones(&[1, 4])).unwrap();
            pump.submit(1, id, handle);
        }
        let deadline = Instant::now() + Duration::from_secs(10);
        let mut settled = 0;
        while settled < 4 {
            assert!(Instant::now() < deadline, "stuck at {settled}/4 settled");
            settled += pump.take_completions().len();
            std::thread::sleep(Duration::from_millis(1));
        }
        assert_eq!(pump.outstanding(), 0);
        pump.shutdown();
        drop(client);
        let _ = server.shutdown();
    }

    #[test]
    fn shutdown_joins_even_with_inflight_handles() {
        let server = tiny_server();
        let client = server.client();
        let pump = CompletionPump::start(Arc::new(Waker::new().unwrap()));
        let handle = client.submit(Tensor::ones(&[1, 4])).unwrap();
        pump.submit(0, 0, handle);
        pump.shutdown(); // must not hang
        drop(client);
        let _ = server.shutdown();
    }
}
