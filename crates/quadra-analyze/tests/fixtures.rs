//! Fixture-based end-to-end tests for the analyzer: every pass must fire on
//! a seeded violation and stay silent on the matching clean fixture.
//!
//! Fixtures are in-memory sources fed through [`analyze_sources`] with small
//! purpose-built configs, so these tests are hermetic — they never read the
//! real workspace and cannot break when workspace code moves.

use quadra_analyze::{analyze_sources, AnalyzeConfig, ClockRegion, HotPath, PanicCheck, Report};

fn analyze(files: &[(&str, &str)], cfg: &AnalyzeConfig) -> Report {
    let owned: Vec<(String, String)> =
        files.iter().map(|(p, s)| ((*p).to_string(), (*s).to_string())).collect();
    analyze_sources(&owned, cfg)
}

/// `(pass, check)` pairs of the unsuppressed findings, in report order.
fn unsuppressed(report: &Report) -> Vec<(String, String)> {
    report.unsuppressed().map(|f| (f.pass.clone(), f.check.clone())).collect()
}

fn all_panic_checks() -> Vec<PanicCheck> {
    vec![PanicCheck::Unwrap, PanicCheck::Expect, PanicCheck::Panic, PanicCheck::Indexing]
}

/// Config that treats `src/hot.rs` as a hot path with every panic check on.
fn hot_cfg() -> AnalyzeConfig {
    AnalyzeConfig {
        hot_paths: vec![HotPath { path_suffix: "src/hot.rs".to_string(), checks: all_panic_checks() }],
        ..AnalyzeConfig::default()
    }
}

/// Config that knows the workspace's lock / wait helper names.
fn helper_cfg() -> AnalyzeConfig {
    AnalyzeConfig {
        lock_helpers: vec!["lock_or_recover".to_string()],
        wait_helpers: vec!["wait_or_recover".to_string()],
        ..AnalyzeConfig::default()
    }
}

// ---------------------------------------------------------------- lock_order

#[test]
fn opposite_lock_orders_in_two_fns_form_a_cycle() {
    let src = r#"
use std::sync::Mutex;

static A_LOCK: Mutex<u32> = Mutex::new(0);
static B_LOCK: Mutex<u32> = Mutex::new(0);

fn ab() {
    let a = A_LOCK.lock();
    let b = B_LOCK.lock();
    drop(b);
    drop(a);
}

fn ba() {
    let b = B_LOCK.lock();
    let a = A_LOCK.lock();
    drop(a);
    drop(b);
}
"#;
    let report = analyze(&[("crates/fixture/src/locks.rs", src)], &AnalyzeConfig::default());
    let found = unsuppressed(&report);
    assert_eq!(found, vec![("lock_order".to_string(), "cycle".to_string())]);
    let msg = &report.findings[0].message;
    assert!(msg.contains("A_LOCK") && msg.contains("B_LOCK"), "cycle names both locks: {msg}");
}

#[test]
fn interprocedural_lock_order_cycle_is_detected() {
    let src = r#"
use std::sync::Mutex;

static A_LOCK: Mutex<u32> = Mutex::new(0);
static B_LOCK: Mutex<u32> = Mutex::new(0);

fn helper() {
    let b = B_LOCK.lock();
    drop(b);
}

fn outer() {
    let a = A_LOCK.lock();
    helper();
    drop(a);
}

fn other() {
    let b = B_LOCK.lock();
    let a = A_LOCK.lock();
    drop(a);
    drop(b);
}
"#;
    let report = analyze(&[("crates/fixture/src/locks.rs", src)], &AnalyzeConfig::default());
    assert_eq!(unsuppressed(&report), vec![("lock_order".to_string(), "cycle".to_string())]);
}

#[test]
fn consistent_lock_order_is_clean() {
    let src = r#"
use std::sync::Mutex;

static A_LOCK: Mutex<u32> = Mutex::new(0);
static B_LOCK: Mutex<u32> = Mutex::new(0);

fn first() {
    let a = A_LOCK.lock();
    let b = B_LOCK.lock();
    drop(b);
    drop(a);
}

fn second() {
    let a = A_LOCK.lock();
    let b = B_LOCK.lock();
    drop(b);
    drop(a);
}
"#;
    let report = analyze(&[("crates/fixture/src/locks.rs", src)], &AnalyzeConfig::default());
    assert!(unsuppressed(&report).is_empty(), "got {:?}", unsuppressed(&report));
}

#[test]
fn lock_graphs_are_per_crate() {
    // The same opposite orders split across two crates must NOT form a cycle:
    // the graph is workspace-wide, but lock identities are crate-qualified,
    // so identically named statics in different crates never alias.
    let ab = r#"
static A_LOCK: std::sync::Mutex<u32> = std::sync::Mutex::new(0);
static B_LOCK: std::sync::Mutex<u32> = std::sync::Mutex::new(0);

fn ab() {
    let a = A_LOCK.lock();
    let b = B_LOCK.lock();
    drop(b);
    drop(a);
}
"#;
    let ba = r#"
static A_LOCK: std::sync::Mutex<u32> = std::sync::Mutex::new(0);
static B_LOCK: std::sync::Mutex<u32> = std::sync::Mutex::new(0);

fn ba() {
    let b = B_LOCK.lock();
    let a = A_LOCK.lock();
    drop(a);
    drop(b);
}
"#;
    let report =
        analyze(&[("crates/one/src/lib.rs", ab), ("crates/two/src/lib.rs", ba)], &AnalyzeConfig::default());
    assert!(unsuppressed(&report).is_empty(), "got {:?}", unsuppressed(&report));
}

#[test]
fn reacquiring_a_held_lock_is_reentrant() {
    let src = r#"
static A_LOCK: std::sync::Mutex<u32> = std::sync::Mutex::new(0);

fn twice() {
    let a = A_LOCK.lock();
    let b = A_LOCK.lock();
    drop(b);
    drop(a);
}
"#;
    let report = analyze(&[("crates/fixture/src/locks.rs", src)], &AnalyzeConfig::default());
    assert_eq!(unsuppressed(&report), vec![("lock_order".to_string(), "reentrant".to_string())]);
}

#[test]
fn lock_held_across_channel_send_is_flagged() {
    let src = r#"
static A_LOCK: std::sync::Mutex<u32> = std::sync::Mutex::new(0);

fn ship(tx: &std::sync::mpsc::Sender<u32>) {
    let a = A_LOCK.lock();
    tx.send(1);
    drop(a);
}
"#;
    let report = analyze(&[("crates/fixture/src/locks.rs", src)], &AnalyzeConfig::default());
    assert_eq!(unsuppressed(&report), vec![("lock_order".to_string(), "held-across-blocking".to_string())]);
    assert!(report.findings[0].message.contains("A_LOCK"));
}

#[test]
fn other_lock_held_across_condvar_wait_is_flagged_but_waited_guard_is_exempt() {
    let src = r#"
static A_LOCK: std::sync::Mutex<u32> = std::sync::Mutex::new(0);
static B_LOCK: std::sync::Mutex<u32> = std::sync::Mutex::new(0);
static CV: std::sync::Condvar = std::sync::Condvar::new();

fn waits_with_second_lock() {
    let held = A_LOCK.lock();
    let g = B_LOCK.lock();
    let g = CV.wait(g);
    drop(g);
    drop(held);
}
"#;
    let report = analyze(&[("crates/fixture/src/locks.rs", src)], &AnalyzeConfig::default());
    let found = unsuppressed(&report);
    assert_eq!(found, vec![("lock_order".to_string(), "held-across-blocking".to_string())]);
    // Only the *other* lock is flagged; the guard handed to `wait` is exempt.
    assert!(report.findings[0].message.contains("A_LOCK"), "{}", report.findings[0].message);
}

#[test]
fn waiting_on_the_only_held_guard_is_clean() {
    let src = r#"
static B_LOCK: std::sync::Mutex<u32> = std::sync::Mutex::new(0);
static CV: std::sync::Condvar = std::sync::Condvar::new();

fn good_wait() {
    let g = B_LOCK.lock();
    let g = CV.wait(g);
    drop(g);
}
"#;
    let report = analyze(&[("crates/fixture/src/locks.rs", src)], &AnalyzeConfig::default());
    assert!(unsuppressed(&report).is_empty(), "got {:?}", unsuppressed(&report));
}

#[test]
fn configured_helpers_acquire_and_wait_without_findings() {
    let src = r#"
static STATE: std::sync::Mutex<u32> = std::sync::Mutex::new(0);
static CV: std::sync::Condvar = std::sync::Condvar::new();

fn helper_wait() {
    let st = lock_or_recover(&STATE);
    let st = wait_or_recover(&CV, st);
    drop(st);
}
"#;
    let report = analyze(&[("crates/fixture/src/locks.rs", src)], &helper_cfg());
    assert!(unsuppressed(&report).is_empty(), "got {:?}", unsuppressed(&report));
}

#[test]
fn helper_acquisitions_participate_in_cycle_detection() {
    let src = r#"
static A_LOCK: std::sync::Mutex<u32> = std::sync::Mutex::new(0);
static B_LOCK: std::sync::Mutex<u32> = std::sync::Mutex::new(0);

fn ab() {
    let a = lock_or_recover(&A_LOCK);
    let b = lock_or_recover(&B_LOCK);
    drop(b);
    drop(a);
}

fn ba() {
    let b = lock_or_recover(&B_LOCK);
    let a = lock_or_recover(&A_LOCK);
    drop(a);
    drop(b);
}
"#;
    let report = analyze(&[("crates/fixture/src/locks.rs", src)], &helper_cfg());
    assert_eq!(unsuppressed(&report), vec![("lock_order".to_string(), "cycle".to_string())]);
}

// ---------------------------------------------------------------- panic_path

#[test]
fn hot_path_panics_are_flagged_per_check() {
    let src = r#"
fn a(x: Option<u32>) -> u32 {
    x.unwrap()
}

fn b(x: Option<u32>) -> u32 {
    x.expect("present")
}

fn c() {
    panic!("boom");
}

fn d(v: &[u32]) -> u32 {
    v[0]
}
"#;
    let report = analyze(&[("crates/fixture/src/hot.rs", src)], &hot_cfg());
    let mut found = unsuppressed(&report);
    found.sort();
    assert_eq!(
        found,
        vec![
            ("panic_path".to_string(), "expect".to_string()),
            ("panic_path".to_string(), "indexing".to_string()),
            ("panic_path".to_string(), "panic".to_string()),
            ("panic_path".to_string(), "unwrap".to_string()),
        ]
    );
}

#[test]
fn same_code_outside_the_hot_path_is_silent() {
    let src = r#"
fn a(x: Option<u32>) -> u32 {
    x.unwrap()
}

fn d(v: &[u32]) -> u32 {
    v[0]
}
"#;
    let report = analyze(&[("crates/fixture/src/cold.rs", src)], &hot_cfg());
    assert!(unsuppressed(&report).is_empty(), "got {:?}", unsuppressed(&report));
}

#[test]
fn lock_unwrap_is_flagged_crate_wide() {
    // Not a hot path, but the crate is in `lock_unwrap_crates`, so the
    // poison-propagating pattern is still forbidden.
    let src = r#"
fn read(m: &std::sync::Mutex<u32>) -> u32 {
    *m.lock().unwrap()
}
"#;
    let cfg = AnalyzeConfig { lock_unwrap_crates: vec!["fixture".to_string()], ..AnalyzeConfig::default() };
    let report = analyze(&[("crates/fixture/src/anywhere.rs", src)], &cfg);
    assert_eq!(unsuppressed(&report), vec![("panic_path".to_string(), "lock-unwrap".to_string())]);
}

#[test]
fn test_code_in_a_hot_path_file_is_excluded() {
    let src = r#"
fn add(a: u32, b: u32) -> u32 {
    a + b
}

#[cfg(test)]
mod tests {
    #[test]
    fn panics_are_fine_in_tests() {
        let v = vec![1u32];
        let x = v[0];
        let y: Option<u32> = Some(x);
        y.unwrap();
    }
}
"#;
    let report = analyze(&[("crates/fixture/src/hot.rs", src)], &hot_cfg());
    assert!(unsuppressed(&report).is_empty(), "got {:?}", unsuppressed(&report));
}

// --------------------------------------------------------------------- clock

#[test]
fn raw_clock_reads_in_a_ledger_fn_are_flagged() {
    let src = r#"
use std::time::Instant;

fn settle(t0: Instant) -> u64 {
    let now = Instant::now();
    t0.elapsed().as_micros() as u64
}

fn outside_the_region() -> Instant {
    Instant::now()
}
"#;
    let cfg = AnalyzeConfig {
        clock_regions: vec![ClockRegion {
            path_suffix: "src/ledger.rs".to_string(),
            fns: vec!["settle".to_string()],
        }],
        ..AnalyzeConfig::default()
    };
    let report = analyze(&[("crates/fixture/src/ledger.rs", src)], &cfg);
    let mut found = unsuppressed(&report);
    found.sort();
    assert_eq!(
        found,
        vec![
            ("clock".to_string(), "raw-elapsed".to_string()),
            ("clock".to_string(), "raw-instant".to_string()),
        ]
    );
}

#[test]
fn system_time_is_forbidden_in_configured_crates() {
    let src = r#"
fn stamp() -> u64 {
    let t = std::time::SystemTime::now();
    0
}
"#;
    let cfg = AnalyzeConfig {
        clock_forbid_system_time_crates: vec!["fixture".to_string()],
        ..AnalyzeConfig::default()
    };
    let report = analyze(&[("crates/fixture/src/time.rs", src)], &cfg);
    assert_eq!(unsuppressed(&report), vec![("clock".to_string(), "system-time".to_string())]);
    // The same source in a crate outside the policy is clean.
    let other = analyze(&[("crates/elsewhere/src/time.rs", src)], &cfg);
    assert!(unsuppressed(&other).is_empty());
}

// ------------------------------------------------------------------ must_use

#[test]
fn pub_struct_returned_by_value_needs_must_use() {
    let src = r#"
pub struct Handle {
    pub id: u32,
}

pub fn make() -> Handle {
    Handle { id: 1 }
}
"#;
    let cfg = AnalyzeConfig { must_use_crates: vec!["fixture".to_string()], ..AnalyzeConfig::default() };
    let report = analyze(&[("crates/fixture/src/lib.rs", src)], &cfg);
    assert_eq!(unsuppressed(&report), vec![("must_use".to_string(), "missing-attr".to_string())]);
    assert!(report.findings[0].message.contains("Handle"));
}

#[test]
fn must_use_attribute_satisfies_the_check() {
    let src = r#"
#[must_use = "dropping a Handle leaks its slot"]
pub struct Handle {
    pub id: u32,
}

pub fn make() -> Handle {
    Handle { id: 1 }
}
"#;
    let cfg = AnalyzeConfig { must_use_crates: vec!["fixture".to_string()], ..AnalyzeConfig::default() };
    let report = analyze(&[("crates/fixture/src/lib.rs", src)], &cfg);
    assert!(unsuppressed(&report).is_empty(), "got {:?}", unsuppressed(&report));
}

#[test]
fn let_underscore_discard_is_flagged() {
    let src = r#"
fn compute() -> u32 {
    7
}

fn caller() {
    let _ = compute();
}
"#;
    let cfg = AnalyzeConfig { must_use_crates: vec!["fixture".to_string()], ..AnalyzeConfig::default() };
    let report = analyze(&[("crates/fixture/src/lib.rs", src)], &cfg);
    assert_eq!(unsuppressed(&report), vec![("must_use".to_string(), "let-underscore".to_string())]);
}

// -------------------------------------------------------------- suppressions

#[test]
fn a_valid_suppression_silences_the_finding_and_keeps_the_reason() {
    let src = r#"
fn a(x: Option<u32>) -> u32 {
    // quadra-analyze: allow(panic_path:unwrap, caller validated x above)
    x.unwrap()
}
"#;
    let report = analyze(&[("crates/fixture/src/hot.rs", src)], &hot_cfg());
    assert_eq!(report.findings.len(), 1);
    assert_eq!(report.unsuppressed_count(), 0);
    assert_eq!(report.suppressed_count(), 1);
    assert_eq!(report.findings[0].suppressed_reason.as_deref(), Some("caller validated x above"));
    assert!(report.unused_suppressions.is_empty());
}

#[test]
fn a_header_suppression_covers_the_whole_fn() {
    let src = r#"
// quadra-analyze: allow(panic_path, the whole fn is a checked decode)
fn a(v: &[u32]) -> u32 {
    let x = v[0];
    let y: Option<u32> = Some(x);
    y.unwrap()
}
"#;
    let report = analyze(&[("crates/fixture/src/hot.rs", src)], &hot_cfg());
    assert_eq!(report.unsuppressed_count(), 0, "got {:?}", unsuppressed(&report));
    assert_eq!(report.suppressed_count(), 2);
}

#[test]
fn suppression_without_a_reason_is_itself_a_finding() {
    let src = r#"
fn a(x: Option<u32>) -> u32 {
    // quadra-analyze: allow(panic_path:unwrap)
    x.unwrap()
}
"#;
    let report = analyze(&[("crates/fixture/src/hot.rs", src)], &hot_cfg());
    let mut found = unsuppressed(&report);
    found.sort();
    // The malformed directive suppresses nothing, so the unwrap stays too.
    assert_eq!(
        found,
        vec![
            ("panic_path".to_string(), "unwrap".to_string()),
            ("suppression".to_string(), "malformed".to_string()),
        ]
    );
}

#[test]
fn suppression_naming_an_unknown_pass_is_malformed() {
    let src = r#"
fn a() -> u32 {
    // quadra-analyze: allow(bogus_pass, sounds legit)
    1
}
"#;
    let report = analyze(&[("crates/fixture/src/hot.rs", src)], &hot_cfg());
    assert_eq!(unsuppressed(&report), vec![("suppression".to_string(), "malformed".to_string())]);
    assert!(report.findings[0].message.contains("bogus_pass"));
}

#[test]
fn a_suppression_matching_nothing_is_reported_unused() {
    let src = r#"
fn a() -> u32 {
    // quadra-analyze: allow(clock, belt and braces)
    1
}
"#;
    let report = analyze(&[("crates/fixture/src/hot.rs", src)], &hot_cfg());
    assert!(report.findings.is_empty());
    assert_eq!(report.unused_suppressions.len(), 1);
    assert_eq!(report.unused_suppressions[0].target, "clock");
}

// --------------------------------------------------------------------- clean

#[test]
fn a_realistic_clean_file_produces_no_findings_under_full_policy() {
    let src = r#"
static STATE: std::sync::Mutex<u32> = std::sync::Mutex::new(0);

#[must_use = "a ticket must be redeemed"]
pub struct Ticket {
    pub serial: u32,
}

pub fn issue() -> Ticket {
    let mut st = lock_or_recover(&STATE);
    *st += 1;
    Ticket { serial: *st }
}

pub fn redeem(t: Ticket) -> Option<u32> {
    t.serial.checked_mul(2)
}
"#;
    let cfg = AnalyzeConfig {
        lock_helpers: vec!["lock_or_recover".to_string()],
        hot_paths: vec![HotPath { path_suffix: "src/lib.rs".to_string(), checks: all_panic_checks() }],
        lock_unwrap_crates: vec!["fixture".to_string()],
        clock_forbid_system_time_crates: vec!["fixture".to_string()],
        must_use_crates: vec!["fixture".to_string()],
        ..AnalyzeConfig::default()
    };
    let report = analyze(&[("crates/fixture/src/lib.rs", src)], &cfg);
    assert!(report.findings.is_empty(), "got {:?}", unsuppressed(&report));
    assert!(report.unused_suppressions.is_empty());
    assert_eq!(report.files_analyzed, 1);
}

// ---------------------------------------------------- cross-crate lock_order

#[test]
fn cross_crate_cycle_via_path_qualified_call_is_detected() {
    // core locks B; serve locks A then calls core::take_b by path. A second
    // serve fn locks B_LOCK cross-crate? No — cycle forms via serve's own
    // A-after-B order against the A->B order reached through the call.
    let core = r#"
pub static CORE_LOCK: std::sync::Mutex<u32> = std::sync::Mutex::new(0);

pub fn take_core() {
    let g = CORE_LOCK.lock();
    drop(g);
}
"#;
    let serve = r#"
static SERVE_LOCK: std::sync::Mutex<u32> = std::sync::Mutex::new(0);

fn forward() {
    let a = SERVE_LOCK.lock();
    fix_core::take_core();
    drop(a);
}

fn backward() {
    let b = fix_core::CORE_LOCK.lock();
    let a = SERVE_LOCK.lock();
    drop(a);
    drop(b);
}
"#;
    let report = analyze(
        &[("crates/fix-core/src/lib.rs", core), ("crates/fix-serve/src/lib.rs", serve)],
        &AnalyzeConfig::default(),
    );
    let found = unsuppressed(&report);
    assert_eq!(found, vec![("lock_order".to_string(), "cycle".to_string())], "got {found:?}");
    let msg = &report.findings[0].message;
    assert!(
        msg.contains("fix-serve::SERVE_LOCK") && msg.contains("fix-core::CORE_LOCK"),
        "cycle names crate-qualified locks: {msg}"
    );
}

#[test]
fn cross_crate_cycle_via_use_alias_is_detected() {
    // The callee is imported with `use`, so the call site is a bare name;
    // resolution must go through the file's use-alias map.
    let core = r#"
pub static CORE_LOCK: std::sync::Mutex<u32> = std::sync::Mutex::new(0);

pub fn take_core() {
    let g = CORE_LOCK.lock();
    drop(g);
}
"#;
    let serve = r#"
use fix_core::{take_core, CORE_LOCK};

static SERVE_LOCK: std::sync::Mutex<u32> = std::sync::Mutex::new(0);

fn forward() {
    let a = SERVE_LOCK.lock();
    take_core();
    drop(a);
}

fn backward() {
    let b = CORE_LOCK.lock();
    let a = SERVE_LOCK.lock();
    drop(a);
    drop(b);
}
"#;
    let report = analyze(
        &[("crates/fix-core/src/lib.rs", core), ("crates/fix-serve/src/lib.rs", serve)],
        &AnalyzeConfig::default(),
    );
    assert_eq!(unsuppressed(&report), vec![("lock_order".to_string(), "cycle".to_string())]);
}

#[test]
fn lock_held_across_blocking_cross_crate_callee_is_detected() {
    // The blocking op lives in another crate; the caller holds a lock across
    // the call, which must surface through the cross-crate summary.
    let core = r#"
pub fn drain(rx: &std::sync::mpsc::Receiver<u32>) {
    let _ = rx.recv();
}
"#;
    let serve = r#"
static SERVE_LOCK: std::sync::Mutex<u32> = std::sync::Mutex::new(0);

fn pump(rx: &std::sync::mpsc::Receiver<u32>) {
    let g = SERVE_LOCK.lock();
    fix_core::drain(rx);
    drop(g);
}
"#;
    let report = analyze(
        &[("crates/fix-core/src/lib.rs", core), ("crates/fix-serve/src/lib.rs", serve)],
        &AnalyzeConfig::default(),
    );
    let found = unsuppressed(&report);
    assert_eq!(found, vec![("lock_order".to_string(), "held-across-blocking".to_string())], "got {found:?}");
    assert!(report.findings[0].message.contains("drain"), "{}", report.findings[0].message);
}

#[test]
fn same_named_fns_in_different_crates_do_not_merge() {
    // Both crates define `refresh`, but only core's blocks. serve calling its
    // OWN refresh under a lock must stay clean — by-name merging across
    // crates would be a false positive.
    let core = r#"
pub fn refresh(rx: &std::sync::mpsc::Receiver<u32>) {
    let _ = rx.recv();
}
"#;
    let serve = r#"
static SERVE_LOCK: std::sync::Mutex<u32> = std::sync::Mutex::new(0);

fn refresh() {
    let x = 1;
    drop(x);
}

fn tick() {
    let g = SERVE_LOCK.lock();
    refresh();
    drop(g);
}
"#;
    let report = analyze(
        &[("crates/fix-core/src/lib.rs", core), ("crates/fix-serve/src/lib.rs", serve)],
        &AnalyzeConfig::default(),
    );
    assert!(unsuppressed(&report).is_empty(), "got {:?}", unsuppressed(&report));
}

// ------------------------------------------------------------------- atomics

/// Config enabling the atomics pass for the fixture crate.
fn atomics_cfg() -> AnalyzeConfig {
    AnalyzeConfig { atomics_crates: vec!["fixture".to_string()], ..AnalyzeConfig::default() }
}

#[test]
fn load_then_store_on_same_cell_is_an_rmw_finding() {
    let src = r#"
use std::sync::atomic::{AtomicU64, Ordering};

fn ewma(cell: &AtomicU64, sample: u64) {
    let old = cell.load(Ordering::Relaxed);
    let next = (3 * old + sample) / 4;
    cell.store(next, Ordering::Relaxed);
}
"#;
    let report = analyze(&[("crates/fixture/src/lib.rs", src)], &atomics_cfg());
    let found = unsuppressed(&report);
    assert_eq!(found, vec![("atomics".to_string(), "rmw".to_string())], "got {found:?}");
    assert!(report.findings[0].message.contains("cell"), "{}", report.findings[0].message);
}

#[test]
fn fetch_update_is_clean_and_stronger_orderings_do_not_hide_rmw() {
    // The sanctioned fix — a single RMW — is clean; SeqCst load+store is
    // still a lost-update window and still fires.
    let fixed = r#"
use std::sync::atomic::{AtomicU64, Ordering};

fn ewma(cell: &AtomicU64, sample: u64) {
    let _ = cell.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |old| Some((3 * old + sample) / 4));
}
"#;
    let report = analyze(&[("crates/fixture/src/lib.rs", fixed)], &atomics_cfg());
    assert!(unsuppressed(&report).is_empty(), "got {:?}", unsuppressed(&report));

    let seqcst = r#"
use std::sync::atomic::{AtomicU64, Ordering};

fn bump(cell: &AtomicU64) {
    let old = cell.load(Ordering::SeqCst);
    cell.store(old + 1, Ordering::SeqCst);
}
"#;
    let report = analyze(&[("crates/fixture/src/lib.rs", seqcst)], &atomics_cfg());
    assert_eq!(unsuppressed(&report), vec![("atomics".to_string(), "rmw".to_string())]);
}

#[test]
fn distinct_cells_do_not_pair_into_rmw() {
    let src = r#"
use std::sync::atomic::{AtomicU64, Ordering};

fn shuffle(a: &AtomicU64, b: &AtomicU64) {
    let x = a.load(Ordering::Acquire);
    b.store(x, Ordering::Release);
}
"#;
    let report = analyze(&[("crates/fixture/src/lib.rs", src)], &atomics_cfg());
    assert!(unsuppressed(&report).is_empty(), "got {:?}", unsuppressed(&report));
}

#[test]
fn relaxed_fetch_add_fires_and_acqrel_is_clean() {
    let relaxed = r#"
use std::sync::atomic::{AtomicU64, Ordering};

fn next_id(counter: &AtomicU64) -> u64 {
    counter.fetch_add(1, Ordering::Relaxed)
}
"#;
    let report = analyze(&[("crates/fixture/src/lib.rs", relaxed)], &atomics_cfg());
    assert_eq!(unsuppressed(&report), vec![("atomics".to_string(), "relaxed-fetch".to_string())]);

    let acqrel = r#"
use std::sync::atomic::{AtomicU64, Ordering};

fn next_id(counter: &AtomicU64) -> u64 {
    counter.fetch_add(1, Ordering::AcqRel)
}
"#;
    let report = analyze(&[("crates/fixture/src/lib.rs", acqrel)], &atomics_cfg());
    assert!(unsuppressed(&report).is_empty(), "got {:?}", unsuppressed(&report));
}

#[test]
fn atomics_pass_is_scoped_to_configured_crates_and_suppressible() {
    let src = r#"
use std::sync::atomic::{AtomicU64, Ordering};

fn next_id(counter: &AtomicU64) -> u64 {
    counter.fetch_add(1, Ordering::Relaxed)
}
"#;
    // Unconfigured crate: silent.
    let report = analyze(&[("crates/other/src/lib.rs", src)], &atomics_cfg());
    assert!(unsuppressed(&report).is_empty());
    // Configured crate, reasoned allowlist directive: suppressed, not gone.
    let allowed = r#"
use std::sync::atomic::{AtomicU64, Ordering};

// quadra-analyze: allow(atomics:relaxed-fetch, ids are a monotonic counter; nothing is published through them)
fn next_id(counter: &AtomicU64) -> u64 {
    counter.fetch_add(1, Ordering::Relaxed)
}
"#;
    let report = analyze(&[("crates/fixture/src/lib.rs", allowed)], &atomics_cfg());
    assert!(unsuppressed(&report).is_empty(), "got {:?}", unsuppressed(&report));
    assert_eq!(report.suppressed_count(), 1);
}

// ------------------------------------------------------------------- condvar

/// Config enabling the condvar pass for the fixture crate, with the
/// workspace's wait-helper names registered.
fn condvar_cfg() -> AnalyzeConfig {
    AnalyzeConfig {
        condvar_crates: vec!["fixture".to_string()],
        wait_helpers: vec!["wait_or_recover".to_string()],
        ..AnalyzeConfig::default()
    }
}

#[test]
fn bare_wait_outside_a_loop_is_a_finding() {
    let src = r#"
use std::sync::{Condvar, Mutex};

static CV: Condvar = Condvar::new();
static M: Mutex<bool> = Mutex::new(false);

fn sleep_once() {
    let g = M.lock().unwrap();
    let g = CV.wait(g).unwrap();
    drop(g);
}
"#;
    let report = analyze(&[("crates/fixture/src/lib.rs", src)], &condvar_cfg());
    assert_eq!(unsuppressed(&report), vec![("condvar".to_string(), "wait-not-in-loop".to_string())]);
}

#[test]
fn wait_inside_while_or_loop_is_clean_but_if_guard_fires() {
    let clean = r#"
use std::sync::{Condvar, Mutex};

static CV: Condvar = Condvar::new();
static M: Mutex<bool> = Mutex::new(false);

fn wait_ready() {
    let mut g = M.lock().unwrap();
    while !*g {
        g = CV.wait(g).unwrap();
    }
    drop(g);
}

fn wait_loop() {
    let mut g = M.lock().unwrap();
    loop {
        if *g { break; }
        g = CV.wait(g).unwrap();
    }
    drop(g);
}
"#;
    let report = analyze(&[("crates/fixture/src/lib.rs", clean)], &condvar_cfg());
    assert!(unsuppressed(&report).is_empty(), "got {:?}", unsuppressed(&report));

    // An `if`-guarded wait is exactly the spurious-wakeup bug.
    let if_guarded = r#"
use std::sync::{Condvar, Mutex};

static CV: Condvar = Condvar::new();
static M: Mutex<bool> = Mutex::new(false);

fn wait_maybe() {
    let g = M.lock().unwrap();
    if !*g {
        let g2 = CV.wait(g).unwrap();
        drop(g2);
    }
}
"#;
    let report = analyze(&[("crates/fixture/src/lib.rs", if_guarded)], &condvar_cfg());
    assert_eq!(unsuppressed(&report), vec![("condvar".to_string(), "wait-not-in-loop".to_string())]);
}

#[test]
fn configured_wait_helper_outside_a_loop_is_a_finding() {
    let src = r#"
use std::sync::{Condvar, Mutex, MutexGuard};

fn pause(cv: &Condvar, m: &Mutex<bool>) {
    let g = m.lock().unwrap();
    let g = wait_or_recover(cv, g);
    drop(g);
}
"#;
    let report = analyze(&[("crates/fixture/src/lib.rs", src)], &condvar_cfg());
    let found = unsuppressed(&report);
    assert_eq!(found, vec![("condvar".to_string(), "wait-not-in-loop".to_string())], "got {found:?}");
    assert!(report.findings[0].message.contains("wait_or_recover"));
}

#[test]
fn condvar_pass_is_scoped_to_configured_crates() {
    let src = r#"
use std::sync::{Condvar, Mutex};

static CV: Condvar = Condvar::new();
static M: Mutex<bool> = Mutex::new(false);

fn sleep_once() {
    let g = M.lock().unwrap();
    let g = CV.wait(g).unwrap();
    drop(g);
}
"#;
    let report = analyze(&[("crates/other/src/lib.rs", src)], &condvar_cfg());
    assert!(unsuppressed(&report).is_empty(), "got {:?}", unsuppressed(&report));
}

// ----------------------------------------------------------------- hot_alloc

/// Config designating `src/hot.rs` as a per-request hot-path file.
fn hot_alloc_cfg() -> AnalyzeConfig {
    AnalyzeConfig {
        hot_alloc_paths: vec!["src/hot.rs".to_string()],
        hot_alloc_payload_idents: vec!["request".to_string(), "payload".to_string()],
        ..AnalyzeConfig::default()
    }
}

#[test]
fn all_three_hot_alloc_checks_fire_in_a_designated_file() {
    let src = r#"
struct Request { payload: Vec<f32>, tag: String }

fn handle(request: &Request) -> (Vec<f32>, String, Vec<u32>) {
    let mut out = Vec::new();
    out.push(1.0);
    let label = format!("req-{}", request.tag);
    let copied = request.payload.clone();
    let empty = vec![];
    (copied, label, empty)
}
"#;
    let report = analyze(&[("crates/fixture/src/hot.rs", src)], &hot_alloc_cfg());
    let mut found = unsuppressed(&report);
    found.sort();
    assert_eq!(
        found,
        vec![
            ("hot_alloc".to_string(), "format".to_string()),
            ("hot_alloc".to_string(), "payload-clone".to_string()),
            ("hot_alloc".to_string(), "vec-new".to_string()),
            ("hot_alloc".to_string(), "vec-new".to_string()),
        ],
        "got {found:?}"
    );
}

#[test]
fn presized_and_moving_twin_is_clean() {
    // Same logic with the sanctioned shapes: with_capacity, no format!,
    // ownership moved instead of cloned.
    let src = r#"
struct Request { payload: Vec<f32>, tag: String }

fn handle(request: Request) -> (Vec<f32>, String, Vec<u32>) {
    let mut out = Vec::with_capacity(4);
    out.push(1.0);
    let label = request.tag;
    let moved = request.payload;
    let empty = Vec::with_capacity(0);
    (moved, label, empty)
}
"#;
    let report = analyze(&[("crates/fixture/src/hot.rs", src)], &hot_alloc_cfg());
    assert!(unsuppressed(&report).is_empty(), "got {:?}", unsuppressed(&report));
}

#[test]
fn map_string_and_to_string_growth_checks_fire() {
    let src = r#"
use std::collections::{BTreeMap, HashMap};

struct Request { tag: String }

fn handle(request: &Request) -> (HashMap<u32, u32>, BTreeMap<u32, u32>, String, String) {
    let by_id = HashMap::new();
    let ordered = BTreeMap::new();
    let mut name = String::new();
    name.push('x');
    let label = request.tag.to_string();
    (by_id, ordered, name, label)
}
"#;
    let report = analyze(&[("crates/fixture/src/hot.rs", src)], &hot_alloc_cfg());
    let mut found = unsuppressed(&report);
    found.sort();
    assert_eq!(
        found,
        vec![
            ("hot_alloc".to_string(), "map-new".to_string()),
            ("hot_alloc".to_string(), "map-new".to_string()),
            ("hot_alloc".to_string(), "string-new".to_string()),
            ("hot_alloc".to_string(), "to-string".to_string()),
        ],
        "got {found:?}"
    );
}

#[test]
fn presized_map_and_borrowed_str_twin_is_clean() {
    let src = r#"
use std::collections::HashMap;

struct Request { tag: String }

fn handle(request: &Request) -> (HashMap<u32, u32>, String) {
    let by_id = HashMap::with_capacity(8);
    let mut name = String::with_capacity(16);
    name.push_str(&request.tag);
    (by_id, name)
}
"#;
    let report = analyze(&[("crates/fixture/src/hot.rs", src)], &hot_alloc_cfg());
    assert!(unsuppressed(&report).is_empty(), "got {:?}", unsuppressed(&report));
}

#[test]
fn to_string_suppression_is_honored_with_reason() {
    let src = r#"
fn reject(tag: &str) -> String {
    // quadra-analyze: allow(hot_alloc:to-string, error reply path: runs once per rejected request, not per served one)
    tag.to_string()
}
"#;
    let report = analyze(&[("crates/fixture/src/hot.rs", src)], &hot_alloc_cfg());
    assert!(unsuppressed(&report).is_empty(), "got {:?}", unsuppressed(&report));
    assert_eq!(report.suppressed_count(), 1);
}

#[test]
fn hot_alloc_is_silent_outside_designated_files() {
    let src = r#"
fn build() -> Vec<u32> {
    let mut v = Vec::new();
    v.push(1);
    v
}
"#;
    let report = analyze(&[("crates/fixture/src/cold.rs", src)], &hot_alloc_cfg());
    assert!(unsuppressed(&report).is_empty(), "got {:?}", unsuppressed(&report));
}

#[test]
fn non_payload_clones_are_allowed_and_suppressions_are_honored() {
    let src = r#"
struct Request { payload: Vec<f32> }

fn handle(request: &Request, name: &String) -> String {
    // A clone of non-payload data is fine.
    let n = name.clone();
    // quadra-analyze: allow(hot_alloc:payload-clone, replay buffer needs its own copy by design)
    let p = request.payload.clone();
    drop(p);
    n
}
"#;
    let report = analyze(&[("crates/fixture/src/hot.rs", src)], &hot_alloc_cfg());
    assert!(unsuppressed(&report).is_empty(), "got {:?}", unsuppressed(&report));
    assert_eq!(report.suppressed_count(), 1);
}
