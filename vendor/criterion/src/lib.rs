//! Offline stand-in for the subset of `criterion` that QuadraLib-rs uses.
//!
//! The statistical machinery (bootstrapping, outlier classification, HTML
//! reports) is replaced with a plain wall-clock loop: each benchmark is warmed
//! up once, timed over `sample_size` iterations, and the mean per-iteration
//! time is printed. This keeps `cargo bench` useful for relative comparisons
//! (quadratic vs first-order layers, hybrid vs default BP) without network
//! dependencies.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Prevent the optimiser from deleting a benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Function name + parameter value.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId { label: format!("{}/{}", name.into(), parameter) }
    }

    /// Parameter-only id (used inside `bench_with_input`).
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { label: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { label: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { label: s }
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `f`, running it `iters` times after one warm-up call.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f());
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn human(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

fn run_one(group: Option<&str>, id: &BenchmarkId, iters: u64, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher { iters: iters.max(1), elapsed: Duration::ZERO };
    f(&mut b);
    let per_iter = b.elapsed / (b.iters as u32);
    let name = match group {
        Some(g) => format!("{g}/{}", id.label),
        None => id.label.clone(),
    };
    println!("{name:<48} {:>12}/iter ({} iters)", human(per_iter), b.iters);
}

/// Top-level benchmark driver (mirror of `criterion::Criterion`).
pub struct Criterion {
    default_iters: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { default_iters: 20 }
    }
}

impl Criterion {
    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== group: {name} ==");
        BenchmarkGroup { name, iters: self.default_iters, _criterion: self }
    }

    /// Run a single stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        run_one(None, &id.into(), self.default_iters, &mut f);
        self
    }
}

/// A group of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    iters: u64,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Number of timed iterations per benchmark (criterion's sample count is
    /// reinterpreted as the iteration count of the single timing loop).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.iters = n.max(1) as u64;
        self
    }

    /// Measurement-time hint — accepted and ignored (one timing loop only).
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Benchmark a closure.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        run_one(Some(&self.name), &id.into(), self.iters, &mut f);
        self
    }

    /// Benchmark a closure against an explicit input value.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_one(Some(&self.name), &id, self.iters, &mut |b| f(b, input));
        self
    }

    /// Close the group.
    pub fn finish(self) {}
}

/// Collect benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generate `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_times() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.sample_size(3);
        let mut runs = 0u32;
        group.bench_function("count", |b| b.iter(|| runs += 1));
        // one warm-up + 3 timed iterations
        assert_eq!(runs, 4);
        group.bench_with_input(BenchmarkId::from_parameter(7), &7usize, |b, &n| b.iter(|| black_box(n * 2)));
        group.finish();
    }
}
