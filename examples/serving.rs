//! Batched inference serving: stand up an `InferenceServer` over a small CNN,
//! drive it from concurrent client threads, hot-reload a retrained
//! checkpoint without dropping a request, and print the serving metrics.
//!
//! Run with: `cargo run --release --example serving`

use quadralib::core::{build_model, LayerSpec, ModelConfig};
use quadralib::data::ShapeImageDataset;
use quadralib::nn::{ConstantLr, CrossEntropyLoss, Layer, Sgd, StateDict, Trainer, TrainerConfig};
use quadralib::serve::{BatchPolicy, InferenceServer, ServeConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

fn cnn_config() -> ModelConfig {
    ModelConfig::new(
        "serving-demo",
        3,
        16,
        4,
        vec![
            LayerSpec::Conv {
                out_channels: 8,
                kernel: 3,
                stride: 1,
                padding: 1,
                groups: 1,
                batch_norm: true,
                relu: true,
            },
            LayerSpec::Conv {
                out_channels: 16,
                kernel: 3,
                stride: 2,
                padding: 1,
                groups: 1,
                batch_norm: true,
                relu: true,
            },
            LayerSpec::GlobalAvgPool,
            LayerSpec::Linear { out_features: 4, relu: false },
        ],
    )
}

fn main() {
    // A server over randomly initialised replicas: 2 workers, batches close at
    // 8 samples or after 1 ms.
    let server = InferenceServer::start(
        ServeConfig {
            workers: 2,
            policy: BatchPolicy {
                max_batch_size: 8,
                max_wait: Duration::from_millis(1),
                ..BatchPolicy::default()
            },
        },
        || Box::new(build_model(&cnn_config(), &mut StdRng::seed_from_u64(7))),
    )
    .expect("server starts");

    // Closed-loop clients hammering the server from their own threads.
    let run_clients = |label: &str| {
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let client = server.client();
                std::thread::spawn(move || {
                    let images = ShapeImageDataset::generate(32, 4, 16, 3, 0.05, t).images;
                    for i in 0..32 {
                        let x = images.narrow(0, i, 1).unwrap();
                        let response = client.infer(x).expect("served");
                        assert_eq!(response.output.shape(), &[1, 4]);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        println!("[{label}] {}", server.metrics().describe());
    };
    run_clients("fresh weights ");

    // Meanwhile, "retrain" the model and hot-reload the checkpoint: requests
    // issued after `reload` returns are answered by the new version.
    let mut trained = build_model(&cnn_config(), &mut StdRng::seed_from_u64(7));
    let data = ShapeImageDataset::generate(64, 4, 16, 3, 0.05, 42);
    Trainer::new(TrainerConfig { epochs: 2, batch_size: 16, ..TrainerConfig::default() }).fit(
        &mut trained,
        &CrossEntropyLoss::new(),
        &mut Sgd::plain(0.05),
        &ConstantLr::new(0.05),
        &data.images,
        &data.labels,
        None,
    );
    trained.clear_cache();
    let version = server.reload(StateDict::from_layer(&trained)).expect("compatible checkpoint");
    println!("hot-reloaded trained checkpoint as version {version}");
    run_clients("after reload  ");

    let metrics = server.shutdown();
    println!("\nfinal: {}", metrics.describe());
    println!("\nbatch occupancy:\n{}", metrics.occupancy_ascii(40));
}
