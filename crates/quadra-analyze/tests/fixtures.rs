//! Fixture-based end-to-end tests for the analyzer: every pass must fire on
//! a seeded violation and stay silent on the matching clean fixture.
//!
//! Fixtures are in-memory sources fed through [`analyze_sources`] with small
//! purpose-built configs, so these tests are hermetic — they never read the
//! real workspace and cannot break when workspace code moves.

use quadra_analyze::{analyze_sources, AnalyzeConfig, ClockRegion, HotPath, PanicCheck, Report};

fn analyze(files: &[(&str, &str)], cfg: &AnalyzeConfig) -> Report {
    let owned: Vec<(String, String)> =
        files.iter().map(|(p, s)| ((*p).to_string(), (*s).to_string())).collect();
    analyze_sources(&owned, cfg)
}

/// `(pass, check)` pairs of the unsuppressed findings, in report order.
fn unsuppressed(report: &Report) -> Vec<(String, String)> {
    report.unsuppressed().map(|f| (f.pass.clone(), f.check.clone())).collect()
}

fn all_panic_checks() -> Vec<PanicCheck> {
    vec![PanicCheck::Unwrap, PanicCheck::Expect, PanicCheck::Panic, PanicCheck::Indexing]
}

/// Config that treats `src/hot.rs` as a hot path with every panic check on.
fn hot_cfg() -> AnalyzeConfig {
    AnalyzeConfig {
        hot_paths: vec![HotPath { path_suffix: "src/hot.rs".to_string(), checks: all_panic_checks() }],
        ..AnalyzeConfig::default()
    }
}

/// Config that knows the workspace's lock / wait helper names.
fn helper_cfg() -> AnalyzeConfig {
    AnalyzeConfig {
        lock_helpers: vec!["lock_or_recover".to_string()],
        wait_helpers: vec!["wait_or_recover".to_string()],
        ..AnalyzeConfig::default()
    }
}

// ---------------------------------------------------------------- lock_order

#[test]
fn opposite_lock_orders_in_two_fns_form_a_cycle() {
    let src = r#"
use std::sync::Mutex;

static A_LOCK: Mutex<u32> = Mutex::new(0);
static B_LOCK: Mutex<u32> = Mutex::new(0);

fn ab() {
    let a = A_LOCK.lock();
    let b = B_LOCK.lock();
    drop(b);
    drop(a);
}

fn ba() {
    let b = B_LOCK.lock();
    let a = A_LOCK.lock();
    drop(a);
    drop(b);
}
"#;
    let report = analyze(&[("crates/fixture/src/locks.rs", src)], &AnalyzeConfig::default());
    let found = unsuppressed(&report);
    assert_eq!(found, vec![("lock_order".to_string(), "cycle".to_string())]);
    let msg = &report.findings[0].message;
    assert!(msg.contains("A_LOCK") && msg.contains("B_LOCK"), "cycle names both locks: {msg}");
}

#[test]
fn interprocedural_lock_order_cycle_is_detected() {
    let src = r#"
use std::sync::Mutex;

static A_LOCK: Mutex<u32> = Mutex::new(0);
static B_LOCK: Mutex<u32> = Mutex::new(0);

fn helper() {
    let b = B_LOCK.lock();
    drop(b);
}

fn outer() {
    let a = A_LOCK.lock();
    helper();
    drop(a);
}

fn other() {
    let b = B_LOCK.lock();
    let a = A_LOCK.lock();
    drop(a);
    drop(b);
}
"#;
    let report = analyze(&[("crates/fixture/src/locks.rs", src)], &AnalyzeConfig::default());
    assert_eq!(unsuppressed(&report), vec![("lock_order".to_string(), "cycle".to_string())]);
}

#[test]
fn consistent_lock_order_is_clean() {
    let src = r#"
use std::sync::Mutex;

static A_LOCK: Mutex<u32> = Mutex::new(0);
static B_LOCK: Mutex<u32> = Mutex::new(0);

fn first() {
    let a = A_LOCK.lock();
    let b = B_LOCK.lock();
    drop(b);
    drop(a);
}

fn second() {
    let a = A_LOCK.lock();
    let b = B_LOCK.lock();
    drop(b);
    drop(a);
}
"#;
    let report = analyze(&[("crates/fixture/src/locks.rs", src)], &AnalyzeConfig::default());
    assert!(unsuppressed(&report).is_empty(), "got {:?}", unsuppressed(&report));
}

#[test]
fn lock_graphs_are_per_crate() {
    // The same opposite orders split across two crates must NOT form a cycle:
    // the acquisition graph is per-crate.
    let ab = r#"
static A_LOCK: std::sync::Mutex<u32> = std::sync::Mutex::new(0);
static B_LOCK: std::sync::Mutex<u32> = std::sync::Mutex::new(0);

fn ab() {
    let a = A_LOCK.lock();
    let b = B_LOCK.lock();
    drop(b);
    drop(a);
}
"#;
    let ba = r#"
static A_LOCK: std::sync::Mutex<u32> = std::sync::Mutex::new(0);
static B_LOCK: std::sync::Mutex<u32> = std::sync::Mutex::new(0);

fn ba() {
    let b = B_LOCK.lock();
    let a = A_LOCK.lock();
    drop(a);
    drop(b);
}
"#;
    let report =
        analyze(&[("crates/one/src/lib.rs", ab), ("crates/two/src/lib.rs", ba)], &AnalyzeConfig::default());
    assert!(unsuppressed(&report).is_empty(), "got {:?}", unsuppressed(&report));
}

#[test]
fn reacquiring_a_held_lock_is_reentrant() {
    let src = r#"
static A_LOCK: std::sync::Mutex<u32> = std::sync::Mutex::new(0);

fn twice() {
    let a = A_LOCK.lock();
    let b = A_LOCK.lock();
    drop(b);
    drop(a);
}
"#;
    let report = analyze(&[("crates/fixture/src/locks.rs", src)], &AnalyzeConfig::default());
    assert_eq!(unsuppressed(&report), vec![("lock_order".to_string(), "reentrant".to_string())]);
}

#[test]
fn lock_held_across_channel_send_is_flagged() {
    let src = r#"
static A_LOCK: std::sync::Mutex<u32> = std::sync::Mutex::new(0);

fn ship(tx: &std::sync::mpsc::Sender<u32>) {
    let a = A_LOCK.lock();
    tx.send(1);
    drop(a);
}
"#;
    let report = analyze(&[("crates/fixture/src/locks.rs", src)], &AnalyzeConfig::default());
    assert_eq!(unsuppressed(&report), vec![("lock_order".to_string(), "held-across-blocking".to_string())]);
    assert!(report.findings[0].message.contains("A_LOCK"));
}

#[test]
fn other_lock_held_across_condvar_wait_is_flagged_but_waited_guard_is_exempt() {
    let src = r#"
static A_LOCK: std::sync::Mutex<u32> = std::sync::Mutex::new(0);
static B_LOCK: std::sync::Mutex<u32> = std::sync::Mutex::new(0);
static CV: std::sync::Condvar = std::sync::Condvar::new();

fn waits_with_second_lock() {
    let held = A_LOCK.lock();
    let g = B_LOCK.lock();
    let g = CV.wait(g);
    drop(g);
    drop(held);
}
"#;
    let report = analyze(&[("crates/fixture/src/locks.rs", src)], &AnalyzeConfig::default());
    let found = unsuppressed(&report);
    assert_eq!(found, vec![("lock_order".to_string(), "held-across-blocking".to_string())]);
    // Only the *other* lock is flagged; the guard handed to `wait` is exempt.
    assert!(report.findings[0].message.contains("A_LOCK"), "{}", report.findings[0].message);
}

#[test]
fn waiting_on_the_only_held_guard_is_clean() {
    let src = r#"
static B_LOCK: std::sync::Mutex<u32> = std::sync::Mutex::new(0);
static CV: std::sync::Condvar = std::sync::Condvar::new();

fn good_wait() {
    let g = B_LOCK.lock();
    let g = CV.wait(g);
    drop(g);
}
"#;
    let report = analyze(&[("crates/fixture/src/locks.rs", src)], &AnalyzeConfig::default());
    assert!(unsuppressed(&report).is_empty(), "got {:?}", unsuppressed(&report));
}

#[test]
fn configured_helpers_acquire_and_wait_without_findings() {
    let src = r#"
static STATE: std::sync::Mutex<u32> = std::sync::Mutex::new(0);
static CV: std::sync::Condvar = std::sync::Condvar::new();

fn helper_wait() {
    let st = lock_or_recover(&STATE);
    let st = wait_or_recover(&CV, st);
    drop(st);
}
"#;
    let report = analyze(&[("crates/fixture/src/locks.rs", src)], &helper_cfg());
    assert!(unsuppressed(&report).is_empty(), "got {:?}", unsuppressed(&report));
}

#[test]
fn helper_acquisitions_participate_in_cycle_detection() {
    let src = r#"
static A_LOCK: std::sync::Mutex<u32> = std::sync::Mutex::new(0);
static B_LOCK: std::sync::Mutex<u32> = std::sync::Mutex::new(0);

fn ab() {
    let a = lock_or_recover(&A_LOCK);
    let b = lock_or_recover(&B_LOCK);
    drop(b);
    drop(a);
}

fn ba() {
    let b = lock_or_recover(&B_LOCK);
    let a = lock_or_recover(&A_LOCK);
    drop(a);
    drop(b);
}
"#;
    let report = analyze(&[("crates/fixture/src/locks.rs", src)], &helper_cfg());
    assert_eq!(unsuppressed(&report), vec![("lock_order".to_string(), "cycle".to_string())]);
}

// ---------------------------------------------------------------- panic_path

#[test]
fn hot_path_panics_are_flagged_per_check() {
    let src = r#"
fn a(x: Option<u32>) -> u32 {
    x.unwrap()
}

fn b(x: Option<u32>) -> u32 {
    x.expect("present")
}

fn c() {
    panic!("boom");
}

fn d(v: &[u32]) -> u32 {
    v[0]
}
"#;
    let report = analyze(&[("crates/fixture/src/hot.rs", src)], &hot_cfg());
    let mut found = unsuppressed(&report);
    found.sort();
    assert_eq!(
        found,
        vec![
            ("panic_path".to_string(), "expect".to_string()),
            ("panic_path".to_string(), "indexing".to_string()),
            ("panic_path".to_string(), "panic".to_string()),
            ("panic_path".to_string(), "unwrap".to_string()),
        ]
    );
}

#[test]
fn same_code_outside_the_hot_path_is_silent() {
    let src = r#"
fn a(x: Option<u32>) -> u32 {
    x.unwrap()
}

fn d(v: &[u32]) -> u32 {
    v[0]
}
"#;
    let report = analyze(&[("crates/fixture/src/cold.rs", src)], &hot_cfg());
    assert!(unsuppressed(&report).is_empty(), "got {:?}", unsuppressed(&report));
}

#[test]
fn lock_unwrap_is_flagged_crate_wide() {
    // Not a hot path, but the crate is in `lock_unwrap_crates`, so the
    // poison-propagating pattern is still forbidden.
    let src = r#"
fn read(m: &std::sync::Mutex<u32>) -> u32 {
    *m.lock().unwrap()
}
"#;
    let cfg = AnalyzeConfig { lock_unwrap_crates: vec!["fixture".to_string()], ..AnalyzeConfig::default() };
    let report = analyze(&[("crates/fixture/src/anywhere.rs", src)], &cfg);
    assert_eq!(unsuppressed(&report), vec![("panic_path".to_string(), "lock-unwrap".to_string())]);
}

#[test]
fn test_code_in_a_hot_path_file_is_excluded() {
    let src = r#"
fn add(a: u32, b: u32) -> u32 {
    a + b
}

#[cfg(test)]
mod tests {
    #[test]
    fn panics_are_fine_in_tests() {
        let v = vec![1u32];
        let x = v[0];
        let y: Option<u32> = Some(x);
        y.unwrap();
    }
}
"#;
    let report = analyze(&[("crates/fixture/src/hot.rs", src)], &hot_cfg());
    assert!(unsuppressed(&report).is_empty(), "got {:?}", unsuppressed(&report));
}

// --------------------------------------------------------------------- clock

#[test]
fn raw_clock_reads_in_a_ledger_fn_are_flagged() {
    let src = r#"
use std::time::Instant;

fn settle(t0: Instant) -> u64 {
    let now = Instant::now();
    t0.elapsed().as_micros() as u64
}

fn outside_the_region() -> Instant {
    Instant::now()
}
"#;
    let cfg = AnalyzeConfig {
        clock_regions: vec![ClockRegion {
            path_suffix: "src/ledger.rs".to_string(),
            fns: vec!["settle".to_string()],
        }],
        ..AnalyzeConfig::default()
    };
    let report = analyze(&[("crates/fixture/src/ledger.rs", src)], &cfg);
    let mut found = unsuppressed(&report);
    found.sort();
    assert_eq!(
        found,
        vec![
            ("clock".to_string(), "raw-elapsed".to_string()),
            ("clock".to_string(), "raw-instant".to_string()),
        ]
    );
}

#[test]
fn system_time_is_forbidden_in_configured_crates() {
    let src = r#"
fn stamp() -> u64 {
    let t = std::time::SystemTime::now();
    0
}
"#;
    let cfg = AnalyzeConfig {
        clock_forbid_system_time_crates: vec!["fixture".to_string()],
        ..AnalyzeConfig::default()
    };
    let report = analyze(&[("crates/fixture/src/time.rs", src)], &cfg);
    assert_eq!(unsuppressed(&report), vec![("clock".to_string(), "system-time".to_string())]);
    // The same source in a crate outside the policy is clean.
    let other = analyze(&[("crates/elsewhere/src/time.rs", src)], &cfg);
    assert!(unsuppressed(&other).is_empty());
}

// ------------------------------------------------------------------ must_use

#[test]
fn pub_struct_returned_by_value_needs_must_use() {
    let src = r#"
pub struct Handle {
    pub id: u32,
}

pub fn make() -> Handle {
    Handle { id: 1 }
}
"#;
    let cfg = AnalyzeConfig { must_use_crates: vec!["fixture".to_string()], ..AnalyzeConfig::default() };
    let report = analyze(&[("crates/fixture/src/lib.rs", src)], &cfg);
    assert_eq!(unsuppressed(&report), vec![("must_use".to_string(), "missing-attr".to_string())]);
    assert!(report.findings[0].message.contains("Handle"));
}

#[test]
fn must_use_attribute_satisfies_the_check() {
    let src = r#"
#[must_use = "dropping a Handle leaks its slot"]
pub struct Handle {
    pub id: u32,
}

pub fn make() -> Handle {
    Handle { id: 1 }
}
"#;
    let cfg = AnalyzeConfig { must_use_crates: vec!["fixture".to_string()], ..AnalyzeConfig::default() };
    let report = analyze(&[("crates/fixture/src/lib.rs", src)], &cfg);
    assert!(unsuppressed(&report).is_empty(), "got {:?}", unsuppressed(&report));
}

#[test]
fn let_underscore_discard_is_flagged() {
    let src = r#"
fn compute() -> u32 {
    7
}

fn caller() {
    let _ = compute();
}
"#;
    let cfg = AnalyzeConfig { must_use_crates: vec!["fixture".to_string()], ..AnalyzeConfig::default() };
    let report = analyze(&[("crates/fixture/src/lib.rs", src)], &cfg);
    assert_eq!(unsuppressed(&report), vec![("must_use".to_string(), "let-underscore".to_string())]);
}

// -------------------------------------------------------------- suppressions

#[test]
fn a_valid_suppression_silences_the_finding_and_keeps_the_reason() {
    let src = r#"
fn a(x: Option<u32>) -> u32 {
    // quadra-analyze: allow(panic_path:unwrap, caller validated x above)
    x.unwrap()
}
"#;
    let report = analyze(&[("crates/fixture/src/hot.rs", src)], &hot_cfg());
    assert_eq!(report.findings.len(), 1);
    assert_eq!(report.unsuppressed_count(), 0);
    assert_eq!(report.suppressed_count(), 1);
    assert_eq!(report.findings[0].suppressed_reason.as_deref(), Some("caller validated x above"));
    assert!(report.unused_suppressions.is_empty());
}

#[test]
fn a_header_suppression_covers_the_whole_fn() {
    let src = r#"
// quadra-analyze: allow(panic_path, the whole fn is a checked decode)
fn a(v: &[u32]) -> u32 {
    let x = v[0];
    let y: Option<u32> = Some(x);
    y.unwrap()
}
"#;
    let report = analyze(&[("crates/fixture/src/hot.rs", src)], &hot_cfg());
    assert_eq!(report.unsuppressed_count(), 0, "got {:?}", unsuppressed(&report));
    assert_eq!(report.suppressed_count(), 2);
}

#[test]
fn suppression_without_a_reason_is_itself_a_finding() {
    let src = r#"
fn a(x: Option<u32>) -> u32 {
    // quadra-analyze: allow(panic_path:unwrap)
    x.unwrap()
}
"#;
    let report = analyze(&[("crates/fixture/src/hot.rs", src)], &hot_cfg());
    let mut found = unsuppressed(&report);
    found.sort();
    // The malformed directive suppresses nothing, so the unwrap stays too.
    assert_eq!(
        found,
        vec![
            ("panic_path".to_string(), "unwrap".to_string()),
            ("suppression".to_string(), "malformed".to_string()),
        ]
    );
}

#[test]
fn suppression_naming_an_unknown_pass_is_malformed() {
    let src = r#"
fn a() -> u32 {
    // quadra-analyze: allow(bogus_pass, sounds legit)
    1
}
"#;
    let report = analyze(&[("crates/fixture/src/hot.rs", src)], &hot_cfg());
    assert_eq!(unsuppressed(&report), vec![("suppression".to_string(), "malformed".to_string())]);
    assert!(report.findings[0].message.contains("bogus_pass"));
}

#[test]
fn a_suppression_matching_nothing_is_reported_unused() {
    let src = r#"
fn a() -> u32 {
    // quadra-analyze: allow(clock, belt and braces)
    1
}
"#;
    let report = analyze(&[("crates/fixture/src/hot.rs", src)], &hot_cfg());
    assert!(report.findings.is_empty());
    assert_eq!(report.unused_suppressions.len(), 1);
    assert_eq!(report.unused_suppressions[0].target, "clock");
}

// --------------------------------------------------------------------- clean

#[test]
fn a_realistic_clean_file_produces_no_findings_under_full_policy() {
    let src = r#"
static STATE: std::sync::Mutex<u32> = std::sync::Mutex::new(0);

#[must_use = "a ticket must be redeemed"]
pub struct Ticket {
    pub serial: u32,
}

pub fn issue() -> Ticket {
    let mut st = lock_or_recover(&STATE);
    *st += 1;
    Ticket { serial: *st }
}

pub fn redeem(t: Ticket) -> Option<u32> {
    t.serial.checked_mul(2)
}
"#;
    let cfg = AnalyzeConfig {
        lock_helpers: vec!["lock_or_recover".to_string()],
        hot_paths: vec![HotPath { path_suffix: "src/lib.rs".to_string(), checks: all_panic_checks() }],
        lock_unwrap_crates: vec!["fixture".to_string()],
        clock_forbid_system_time_crates: vec!["fixture".to_string()],
        must_use_crates: vec!["fixture".to_string()],
        ..AnalyzeConfig::default()
    };
    let report = analyze(&[("crates/fixture/src/lib.rs", src)], &cfg);
    assert!(report.findings.is_empty(), "got {:?}", unsuppressed(&report));
    assert!(report.unused_suppressions.is_empty());
    assert_eq!(report.files_analyzed, 1);
}
