//! Object detection with a quadratic backbone: train the SSD stand-in on the
//! synthetic detection dataset and report mAP for a first-order and a
//! quadratic backbone.
//!
//! Run with `cargo run --example object_detection --release`.

use quadralib::core::NeuronType;
use quadralib::data::DetectionDataset;
use quadralib::models::{Detector, DetectorConfig};

fn main() {
    let train = DetectionDataset::generate(80, 3, 32, 2, 1);
    let test = DetectionDataset::generate(30, 3, 32, 2, 2);
    for (name, quadratic) in [("first-order backbone", None), ("QuadraNN backbone", Some(NeuronType::Ours))] {
        let mut det = Detector::new(DetectorConfig {
            num_classes: 3,
            image_size: 32,
            backbone_width: 8,
            grid: 4,
            quadratic,
            seed: 3,
        });
        let losses = det.train(&train, 6, 16, 0.05, 4);
        let map = det.evaluate_map(&test, 0.3);
        println!(
            "{:<22} params {:>8}  final loss {:.3}  mAP {:.3}  per-class AP {:?}",
            name,
            det.param_count(),
            losses.last().unwrap(),
            map.map,
            map.per_class_ap.iter().map(|a| (a * 100.0).round() / 100.0).collect::<Vec<_>>()
        );
    }
}
