//! Quickstart: build a quadratic layer, assemble a small QDNN from a
//! configuration file, and train it on a toy problem that a linear network
//! struggles with (XOR).
//!
//! Run with `cargo run --example quickstart --release`.

use quadralib::core::{NeuronType, QuadraticLinear};
use quadralib::data::xor_dataset;
use quadralib::nn::{CrossEntropyLoss, Layer, Loss, Optimizer, Sequential, Sgd, SgdConfig};
use quadralib::tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // 1. A single quadratic layer of the paper's proposed design:
    //    f(X) = (Wa·X) ∘ (Wb·X) + Wc·X
    let mut rng = StdRng::seed_from_u64(0);
    let mut layer = QuadraticLinear::new(NeuronType::Ours, 2, 2, &mut rng);
    let x = Tensor::from_vec(vec![1.0, -1.0], &[1, 2]).unwrap();
    println!("quadratic layer output for [1, -1]: {:?}", layer.forward(&x, false));

    // 2. A one-quadratic-layer "network" solves XOR, the classic example a
    //    single linear neuron cannot represent.
    let (train_x, train_y) = xor_dataset(400, 0.1, 1);
    let (test_x, test_y) = xor_dataset(100, 0.1, 2);
    let mut model = Sequential::new(vec![Box::new(QuadraticLinear::new(NeuronType::Ours, 2, 2, &mut rng))]);
    let mut opt = Sgd::new(SgdConfig { lr: 0.1, momentum: 0.9, weight_decay: 0.0, nesterov: false });
    let loss_fn = CrossEntropyLoss::new();
    for epoch in 0..60 {
        let logits = model.forward(&train_x, true);
        let (loss, grad) = loss_fn.compute(&logits, &train_y);
        model.backward(&grad);
        let mut params = model.params_mut();
        opt.step(&mut params);
        opt.zero_grad(&mut params);
        if epoch % 20 == 0 {
            println!("epoch {:>2}  loss {:.4}", epoch, loss);
        }
    }
    let logits = model.forward(&test_x, false);
    let acc = quadralib::nn::accuracy(&logits, &test_y);
    println!("XOR test accuracy with ONE quadratic layer: {:.1}%", acc * 100.0);
    assert!(acc > 0.9, "a single quadratic neuron layer should solve XOR");
}
