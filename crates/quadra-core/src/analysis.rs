//! Model-analysis tools of QuadraLib's application level: gradient-distribution
//! recording (Fig. 7), weight/activation statistics, ASCII histograms and
//! activation-attention visualisation (Fig. 10).

use quadra_nn::Layer;
use quadra_tensor::Tensor;

/// Per-parameter gradient norms recorded over training, used to diagnose the
/// gradient-vanishing problem (P3) exactly as Fig. 7 of the paper does.
#[derive(Debug, Clone, Default)]
pub struct GradientRecorder {
    /// `history[epoch]` holds `(param_name, grad_l2_norm)` for every parameter.
    history: Vec<Vec<(String, f32)>>,
}

impl GradientRecorder {
    /// Create an empty recorder.
    pub fn new() -> Self {
        GradientRecorder { history: Vec::new() }
    }

    /// Record the current gradient L2 norm of every parameter of `model`.
    /// Call once per epoch *after* backward and *before* `zero_grad`.
    pub fn record(&mut self, model: &dyn Layer) {
        let snapshot = model
            .params()
            .iter()
            .enumerate()
            .map(|(i, p)| (format!("{}#{}", p.name, i), p.grad_l2_norm()))
            .collect();
        self.history.push(snapshot);
    }

    /// Number of recorded epochs.
    pub fn epochs(&self) -> usize {
        self.history.len()
    }

    /// The recorded norm series for the parameter with recorded index `param_idx`.
    pub fn series(&self, param_idx: usize) -> Vec<f32> {
        self.history.iter().map(|epoch| epoch.get(param_idx).map(|(_, v)| *v).unwrap_or(0.0)).collect()
    }

    /// Sum of gradient L2 norms of all parameters whose name contains `filter`,
    /// per epoch (e.g. `filter = "wa"` for all first-branch weights).
    pub fn series_by_name(&self, filter: &str) -> Vec<f32> {
        self.history
            .iter()
            .map(|epoch| epoch.iter().filter(|(n, _)| n.contains(filter)).map(|(_, v)| v).sum())
            .collect()
    }

    /// Names captured at the first recorded epoch.
    pub fn param_names(&self) -> Vec<String> {
        self.history.first().map(|e| e.iter().map(|(n, _)| n.clone()).collect()).unwrap_or_default()
    }

    /// True if the series of `param_idx` has collapsed towards zero: its last
    /// value is below `threshold` times its first value.
    pub fn has_vanished(&self, param_idx: usize, threshold: f32) -> bool {
        let s = self.series(param_idx);
        match (s.first(), s.last()) {
            (Some(&first), Some(&last)) if first > 0.0 => last < threshold * first,
            _ => false,
        }
    }
}

/// Summary statistics of a tensor (weights, gradients or activations).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TensorStats {
    /// Mean value.
    pub mean: f32,
    /// Standard deviation.
    pub std: f32,
    /// Minimum value.
    pub min: f32,
    /// Maximum value.
    pub max: f32,
    /// Fraction of exactly-zero entries.
    pub zero_fraction: f32,
}

/// Compute summary statistics of a tensor.
pub fn tensor_stats(t: &Tensor) -> TensorStats {
    let zeros = t.as_slice().iter().filter(|&&v| v == 0.0).count();
    TensorStats {
        mean: t.mean(),
        std: t.std(),
        min: t.min(),
        max: t.max(),
        zero_fraction: zeros as f32 / t.numel().max(1) as f32,
    }
}

/// Per-parameter statistics of a whole model (the weight/gradient distribution
/// visualisation tool).
pub fn weight_stats(model: &dyn Layer) -> Vec<(String, TensorStats)> {
    model.params().iter().map(|p| (p.name.clone(), tensor_stats(&p.value))).collect()
}

/// Render a list of values as a fixed-width ASCII histogram.
pub fn ascii_histogram(values: &[f32], bins: usize, width: usize) -> String {
    if values.is_empty() || bins == 0 {
        return String::from("(empty)\n");
    }
    let min = values.iter().copied().fold(f32::INFINITY, f32::min);
    let max = values.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let span = (max - min).max(1e-12);
    let mut counts = vec![0usize; bins];
    for &v in values {
        let b = (((v - min) / span) * bins as f32) as usize;
        counts[b.min(bins - 1)] += 1;
    }
    let peak = *counts.iter().max().unwrap_or(&1);
    let mut out = String::new();
    for (i, &c) in counts.iter().enumerate() {
        let lo = min + span * i as f32 / bins as f32;
        let hi = min + span * (i + 1) as f32 / bins as f32;
        let bar = (c * width).checked_div(peak).unwrap_or(0);
        out.push_str(&format!(
            "[{:>9.3}, {:>9.3}) |{:<width$}| {}\n",
            lo,
            hi,
            "█".repeat(bar),
            c,
            width = width
        ));
    }
    out
}

/// Collapse an NCHW activation tensor into a per-sample spatial attention map
/// (mean absolute activation over channels), the quantity visualised in Fig. 10.
pub fn activation_attention(activations: &Tensor, sample: usize) -> Tensor {
    assert_eq!(activations.ndim(), 4, "attention map expects NCHW activations");
    let (n, c, h, w) =
        (activations.shape()[0], activations.shape()[1], activations.shape()[2], activations.shape()[3]);
    assert!(sample < n, "sample index out of range");
    let src = activations.as_slice();
    let mut map = Tensor::zeros(&[h, w]);
    let m = map.as_mut_slice();
    for ci in 0..c {
        let base = (sample * c + ci) * h * w;
        for i in 0..h * w {
            m[i] += src[base + i].abs();
        }
    }
    map.div_scalar(c as f32)
}

/// Render a 2-D map as an ASCII heat map using a density ramp.
pub fn render_heatmap(map: &Tensor) -> String {
    assert_eq!(map.ndim(), 2, "heatmap expects a 2-D map");
    const RAMP: [char; 10] = [' ', '.', ':', '-', '=', '+', '*', '#', '%', '@'];
    let (h, w) = (map.shape()[0], map.shape()[1]);
    let max = map.max().max(1e-12);
    let min = map.min();
    let span = (max - min).max(1e-12);
    let mut out = String::with_capacity(h * (w + 1));
    for i in 0..h {
        for j in 0..w {
            let v = (map.at(&[i, j]) - min) / span;
            let idx = ((v * (RAMP.len() - 1) as f32).round() as usize).min(RAMP.len() - 1);
            out.push(RAMP[idx]);
        }
        out.push('\n');
    }
    out
}

/// How strongly a normalised attention map concentrates on *edges* (high
/// spatial gradient) versus filled *regions*.
///
/// Returns `(edge_score, region_score)`:
/// * `edge_score` — mean absolute spatial gradient of the normalised map; high
///   for maps that light up object boundaries (typical of first-order layers).
/// * `region_score` — fraction of pixels above half of the maximum; high for
///   maps that light up whole objects (what the paper observes for quadratic
///   layers).
pub fn edge_vs_region_score(map: &Tensor) -> (f32, f32) {
    assert_eq!(map.ndim(), 2, "score expects a 2-D map");
    let (h, w) = (map.shape()[0], map.shape()[1]);
    let max = map.max().max(1e-12);
    let norm = map.div_scalar(max);
    let mut grad_sum = 0.0f32;
    let mut grad_count = 0usize;
    for i in 0..h {
        for j in 0..w {
            if i + 1 < h {
                grad_sum += (norm.at(&[i + 1, j]) - norm.at(&[i, j])).abs();
                grad_count += 1;
            }
            if j + 1 < w {
                grad_sum += (norm.at(&[i, j + 1]) - norm.at(&[i, j])).abs();
                grad_count += 1;
            }
        }
    }
    let edge_score = grad_sum / grad_count.max(1) as f32;
    let region_score = norm.as_slice().iter().filter(|&&v| v > 0.5).count() as f32 / (h * w) as f32;
    (edge_score, region_score)
}

#[cfg(test)]
mod tests {
    use super::*;
    use quadra_nn::{Linear, Sequential};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn gradient_recorder_tracks_norms_over_epochs() {
        let mut rng = StdRng::seed_from_u64(12);
        let mut model = Sequential::new(vec![Box::new(Linear::new(4, 4, true, &mut rng))]);
        let mut rec = GradientRecorder::new();
        let x = Tensor::randn(&[8, 4], 0.0, 1.0, &mut rng);
        for scale in [1.0f32, 0.1, 0.01] {
            let y = model.forward(&x, true);
            model.backward(&y.map(|_| scale));
            rec.record(&model);
            for p in model.params_mut() {
                p.zero_grad();
            }
        }
        assert_eq!(rec.epochs(), 3);
        assert_eq!(rec.param_names().len(), 2);
        let weight_series = rec.series(0);
        assert_eq!(weight_series.len(), 3);
        // Gradient norms shrink as the upstream gradient shrinks.
        assert!(weight_series[0] > weight_series[1]);
        assert!(weight_series[1] > weight_series[2]);
        assert!(rec.has_vanished(0, 0.5));
        assert!(!rec.has_vanished(0, 1e-6));
        let by_name = rec.series_by_name("linear.weight");
        assert_eq!(by_name.len(), 3);
        assert!(by_name[0] > 0.0);
        assert!(rec.series_by_name("does-not-exist").iter().all(|&v| v == 0.0));
    }

    #[test]
    fn empty_recorder_is_well_behaved() {
        let rec = GradientRecorder::new();
        assert_eq!(rec.epochs(), 0);
        assert!(rec.param_names().is_empty());
        assert!(rec.series(0).is_empty());
        assert!(!rec.has_vanished(0, 0.1));
    }

    #[test]
    fn tensor_and_weight_stats() {
        let t = Tensor::from_slice(&[0.0, 1.0, 2.0, 3.0]);
        let s = tensor_stats(&t);
        assert_eq!(s.mean, 1.5);
        assert_eq!(s.min, 0.0);
        assert_eq!(s.max, 3.0);
        assert_eq!(s.zero_fraction, 0.25);
        assert!(s.std > 1.0 && s.std < 1.2);

        let mut rng = StdRng::seed_from_u64(13);
        let model = Sequential::new(vec![Box::new(Linear::new(3, 2, true, &mut rng))]);
        let stats = weight_stats(&model);
        assert_eq!(stats.len(), 2);
        assert!(stats[0].0.contains("weight"));
        assert_eq!(stats[1].1.zero_fraction, 1.0); // bias initialised to zero
    }

    #[test]
    fn histogram_renders_every_bin() {
        let values: Vec<f32> = (0..100).map(|i| i as f32 / 10.0).collect();
        let h = ascii_histogram(&values, 5, 20);
        assert_eq!(h.lines().count(), 5);
        assert!(h.contains("█"));
        assert_eq!(ascii_histogram(&[], 5, 20), "(empty)\n");
        assert_eq!(ascii_histogram(&[1.0], 0, 20), "(empty)\n");
        // Constant values collapse into one bin without dividing by zero.
        let constant = ascii_histogram(&[2.0; 10], 4, 10);
        assert_eq!(constant.lines().count(), 4);
    }

    #[test]
    fn attention_map_averages_channels() {
        // Two channels: one all ones, one all threes -> mean abs = 2 everywhere.
        let mut act = Tensor::zeros(&[1, 2, 2, 2]);
        for i in 0..4 {
            act.as_mut_slice()[i] = 1.0;
            act.as_mut_slice()[4 + i] = -3.0;
        }
        let map = activation_attention(&act, 0);
        assert_eq!(map.shape(), &[2, 2]);
        assert!(map.allclose(&Tensor::full(&[2, 2], 2.0), 1e-6));
    }

    #[test]
    #[should_panic]
    fn attention_map_sample_out_of_range_panics() {
        let act = Tensor::zeros(&[1, 1, 2, 2]);
        let _ = activation_attention(&act, 1);
    }

    #[test]
    fn heatmap_renders_dense_for_high_values() {
        let mut map = Tensor::zeros(&[2, 3]);
        map.set(&[0, 0], 10.0);
        let s = render_heatmap(&map);
        assert_eq!(s.lines().count(), 2);
        assert!(s.starts_with('@'));
        assert!(s.contains(' '));
    }

    #[test]
    fn edge_vs_region_scores_distinguish_outline_from_fill() {
        // A filled 4x4 square inside an 8x8 map (region-like activation).
        let mut filled = Tensor::zeros(&[8, 8]);
        for i in 2..6 {
            for j in 2..6 {
                filled.set(&[i, j], 1.0);
            }
        }
        // Only the outline of the same square (edge-like activation).
        let mut outline = Tensor::zeros(&[8, 8]);
        for k in 2..6 {
            outline.set(&[2, k], 1.0);
            outline.set(&[5, k], 1.0);
            outline.set(&[k, 2], 1.0);
            outline.set(&[k, 5], 1.0);
        }
        let (edge_f, region_f) = edge_vs_region_score(&filled);
        let (edge_o, region_o) = edge_vs_region_score(&outline);
        // The filled map covers more area; the outline map has more edges per
        // unit of covered area.
        assert!(region_f > region_o);
        assert!(edge_o / region_o > edge_f / region_f);
    }
}
