//! Figure 8 — memory over one training iteration (forward + backward) of a
//! small ConvNet (3 conv + 2 FC layers) with default back-propagation versus
//! the hybrid back-propagation of the quadratic optimizer.
//!
//! Regenerate with `cargo run -p quadra-bench --release --bin fig8`.

use quadra_bench::{scale, Scale};
use quadra_core::{build_model, LayerSpec, MemoryProfiler, ModelConfig, NeuronType};
use quadra_nn::Layer;
use quadra_tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // The paper uses batch 256 and 32x32 inputs; the quick scale shrinks the
    // batch so the probe stays fast, which only rescales the vertical axis.
    let (batch, size) = match scale() {
        Scale::Full => (256usize, 32usize),
        Scale::Quick => (32, 32),
    };
    let cfg = ModelConfig::new(
        "convnet-3c2f",
        3,
        size,
        10,
        vec![
            LayerSpec::qconv3x3(NeuronType::Ours, 16),
            LayerSpec::MaxPool { kernel: 2 },
            LayerSpec::qconv3x3(NeuronType::Ours, 32),
            LayerSpec::MaxPool { kernel: 2 },
            LayerSpec::qconv3x3(NeuronType::Ours, 32),
            LayerSpec::Flatten,
            LayerSpec::Linear { out_features: 64, relu: true },
            LayerSpec::Linear { out_features: 10, relu: false },
        ],
    );
    let mut rng = StdRng::seed_from_u64(0);
    let input = Tensor::randn(&[batch, 3, size, size], 0.0, 1.0, &mut rng);
    let profiler = MemoryProfiler::new();

    let mut default_model = build_model(&cfg, &mut rng);
    let (default_report, default_timeline) = profiler.profile_step(&mut default_model, &input, 0);

    let mut hybrid_model = build_model(&cfg, &mut rng);
    hybrid_model.set_memory_saving(true);
    let (hybrid_report, hybrid_timeline) = profiler.profile_step(&mut hybrid_model, &input, 0);

    println!("=== Figure 8: memory over one iteration (ConvNet 3 conv + 2 FC, batch {}) ===", batch);
    println!("\n--- Default BP (AD caches every intermediate) ---");
    print!("{}", default_timeline.render_ascii(40));
    println!("\n--- Hybrid BP (symbolic gradients, input-only caching in quadratic layers) ---");
    print!("{}", hybrid_timeline.render_ascii(40));

    let d = default_report.peak_activation_bytes as f64 / (1024.0 * 1024.0);
    let h = hybrid_report.peak_activation_bytes as f64 / (1024.0 * 1024.0);
    println!("\nPeak cached activations: default BP {:.2} MiB, hybrid BP {:.2} MiB", d, h);
    println!("Hybrid-BP saving: {:.1}% (paper reports ~26.7% on its ConvNet)", (1.0 - h / d) * 100.0);
}
