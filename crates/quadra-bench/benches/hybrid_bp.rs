//! Criterion benchmark: time overhead of hybrid back-propagation (recomputation)
//! versus default back-propagation, the other side of Fig. 8's memory saving.

use criterion::{criterion_group, criterion_main, Criterion};
use quadra_core::{BackpropMode, NeuronType, QuadraticConv2d};
use quadra_nn::Layer;
use quadra_tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_hybrid(c: &mut Criterion) {
    let mut group = c.benchmark_group("hybrid_bp");
    group.sample_size(15);
    let mut rng = StdRng::seed_from_u64(0);
    let x = Tensor::randn(&[4, 8, 16, 16], 0.0, 1.0, &mut rng);
    for mode in [BackpropMode::Default, BackpropMode::Hybrid] {
        let mut layer = QuadraticConv2d::conv3x3(NeuronType::Ours, 8, 8, &mut rng);
        layer.set_mode(mode);
        group.bench_function(format!("{:?}", mode), |b| {
            b.iter(|| {
                let y = layer.forward(&x, true);
                std::hint::black_box(layer.backward(&Tensor::ones_like(&y)))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_hybrid);
criterion_main!(benches);
