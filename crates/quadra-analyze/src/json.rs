//! Minimal recursive-descent JSON parser.
//!
//! The analyzer writes its report, baseline, and cache files with the
//! hand-rolled serializers in [`report`](crate::report) and friends; this
//! module is the matching read side, so the crate stays dependency-free (no
//! vendored serde). It parses the full JSON grammar the analyzer emits —
//! objects, arrays, strings with the escapes [`report`](crate::report)'s
//! `json_str` produces, integers/floats, booleans, null — and nothing
//! exotic (no comments, no trailing commas).

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (stored as `f64`; the analyzer only emits line numbers and
    /// counts, all exactly representable).
    Num(f64),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order (the analyzer's writers emit sorted keys).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Look up a key in an object; `None` for missing keys or non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric value as `u64`, if this is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// The boolean value, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// Parse a complete JSON document. Trailing non-whitespace is an error.
pub fn parse(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_literal(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", Json::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_literal(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {pos}", pos = *pos))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len() && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-') {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
    text.parse::<f64>().map(Json::Num).map_err(|_| format!("invalid number `{text}` at byte {start}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    debug_assert_eq!(bytes[*pos], b'"');
    *pos += 1;
    let mut out = String::new();
    while let Some(&b) = bytes.get(*pos) {
        match b {
            b'"' => {
                *pos += 1;
                return Ok(out);
            }
            b'\\' => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or_else(|| format!("truncated \\u escape at byte {}", *pos))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| format!("invalid \\u escape `{hex}`"))?;
                        // The analyzer never emits surrogate pairs (it only
                        // \u-escapes control characters); reject surrogates.
                        out.push(char::from_u32(code).ok_or_else(|| format!("invalid code point \\u{hex}"))?);
                        *pos += 4;
                    }
                    _ => return Err(format!("invalid escape at byte {}", *pos)),
                }
                *pos += 1;
            }
            _ => {
                // Consume one UTF-8 scalar (multi-byte sequences pass through).
                let rest = std::str::from_utf8(&bytes[*pos..]).map_err(|e| e.to_string())?;
                let c = rest.chars().next().ok_or("unterminated string")?;
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
    Err("unterminated string".to_string())
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    *pos += 1; // consume `[`
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected `,` or `]` at byte {}", *pos)),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    *pos += 1; // consume `{`
    let mut pairs = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(pairs));
    }
    loop {
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b'"') {
            return Err(format!("expected object key at byte {}", *pos));
        }
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b':') {
            return Err(format!("expected `:` at byte {}", *pos));
        }
        *pos += 1;
        pairs.push((key, parse_value(bytes, pos)?));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(pairs));
            }
            _ => return Err(format!("expected `,` or `}}` at byte {}", *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let doc = r#"{"a": [1, 2.5, -3], "b": {"c": "x\n\"y\""}, "d": true, "e": null}"#;
        let v = parse(doc).unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap()[0].as_u64(), Some(1));
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_str(), Some("x\n\"y\""));
        assert_eq!(v.get("d").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("e").unwrap(), &Json::Null);
    }

    #[test]
    fn unescapes_control_characters() {
        let v = parse(r#""tab\there \u0001 end""#).unwrap();
        assert_eq!(v.as_str(), Some("tab\there \u{1} end"));
    }

    #[test]
    fn rejects_trailing_garbage_and_truncation() {
        assert!(parse("{} x").is_err());
        assert!(parse("{\"a\": ").is_err());
        assert!(parse("\"unterminated").is_err());
    }

    #[test]
    fn roundtrips_report_style_escapes() {
        // Exactly the escapes report::json_str produces.
        let v = parse(r#""quote \" backslash \\ newline \n tab \t cr \r""#).unwrap();
        assert_eq!(v.as_str(), Some("quote \" backslash \\ newline \n tab \t cr \r"));
    }
}
