//! GAN-based image generation with a quadratic generator, evaluated with the
//! proxy Inception Score and FID metrics.
//!
//! Run with `cargo run --example gan_generation --release`.

use quadralib::core::NeuronType;
use quadralib::data::ShapeImageDataset;
use quadralib::models::{FeatureExtractor, Gan, GanConfig, GenerationMetrics};

fn main() {
    let real = ShapeImageDataset::generate(200, 4, 16, 3, 0.05, 1);
    let mut fx = FeatureExtractor::new(3, 4, 8, 2);
    fx.fit(&real.images, &real.labels, 4, 32, 3);

    for (name, quadratic) in
        [("first-order generator", None), ("quadratic generator (Ours)", Some(NeuronType::Ours))]
    {
        let mut gan = Gan::new(GanConfig { base_width: 12, quadratic, seed: 4, ..GanConfig::default() });
        gan.train(&real.images, 30, 16, 2e-3);
        let fake = gan.generate(100);
        let metrics = GenerationMetrics::evaluate(&mut fx, &real.images, &fake);
        println!(
            "{:<28} gen params {:>8}  IS {:.3}  FID {:.3}",
            name,
            gan.generator_param_count(),
            metrics.inception_score,
            metrics.fid
        );
    }
}
