//! Per-connection buffered framing: partial-read and partial-write
//! reassembly over any non-blocking byte stream.
//!
//! [`Connection`] is generic over the transport (`Read + Write`) so the
//! reassembly logic is tested against scripted transports that return one
//! byte at a time or accept three bytes per write — the pathological
//! fragmentations a real socket produces only under load. The event loop
//! instantiates it over `TcpStream`.
//!
//! The connection itself is policy-free: it surfaces decoded frames and
//! buffers outbound bytes. Interest management (pausing reads past the
//! write-buffer high-water mark, registering for writability) lives in the
//! event loop, which reads [`Connection::pending_out`] to make those calls.

use crate::frame::{decode_frame, encode_frame, Frame, FrameError};
use std::io::{self, Read, Write};

/// Initial capacity of the per-connection buffers. Buffers grow on demand
/// (bounded by the max-frame cap plus one read chunk) and are never shrunk:
/// a connection that carried a large tensor once will likely carry another.
const INITIAL_BUF: usize = 4096;

/// Bytes read from the transport per `read` call.
const READ_CHUNK: usize = 16 * 1024;

/// Why a connection must be torn down.
#[derive(Debug)]
pub enum ConnError {
    /// The transport failed (reset, broken pipe, …).
    Io(io::Error),
    /// The peer violated the wire protocol; the stream cannot be
    /// resynchronised.
    Protocol(FrameError),
}

impl std::fmt::Display for ConnError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConnError::Io(e) => write!(f, "transport error: {e}"),
            ConnError::Protocol(e) => write!(f, "protocol violation: {e}"),
        }
    }
}

impl std::error::Error for ConnError {}

impl From<FrameError> for ConnError {
    fn from(e: FrameError) -> ConnError {
        ConnError::Protocol(e)
    }
}

/// What one readable event produced.
#[derive(Debug)]
pub struct ReadOutcome {
    /// Complete frames decoded this event, in arrival order.
    pub frames: Vec<Frame>,
    /// The peer closed its write half (clean EOF). Buffered `frames` are
    /// still valid and must be processed before teardown.
    pub eof: bool,
}

/// A framed, buffered, non-blocking connection over transport `T`.
pub struct Connection<T> {
    transport: T,
    read_buf: Vec<u8>,
    write_buf: Vec<u8>,
    /// Bytes of `write_buf` already handed to the transport.
    write_start: usize,
    max_frame: usize,
}

impl<T: Read + Write> Connection<T> {
    /// Wrap `transport`, which must already be in non-blocking mode (or be a
    /// test transport that simulates it via `WouldBlock`).
    pub fn new(transport: T, max_frame: usize) -> Connection<T> {
        Connection {
            transport,
            read_buf: Vec::with_capacity(INITIAL_BUF),
            write_buf: Vec::with_capacity(INITIAL_BUF),
            write_start: 0,
            max_frame,
        }
    }

    /// The wrapped transport (the event loop needs the raw fd for interest
    /// management and shutdown).
    pub fn transport(&self) -> &T {
        &self.transport
    }

    /// Drain the transport until it would block (or EOF) and decode every
    /// complete frame. Partial trailing bytes stay buffered for the next
    /// readable event — this is the read half of reassembly.
    pub fn on_readable(&mut self) -> Result<ReadOutcome, ConnError> {
        let mut outcome = ReadOutcome { frames: Vec::with_capacity(4), eof: false };
        let mut chunk = [0u8; READ_CHUNK];
        loop {
            match self.transport.read(&mut chunk) {
                Ok(0) => {
                    outcome.eof = true;
                    break;
                }
                Ok(n) => {
                    let Some(got) = chunk.get(..n) else { break };
                    self.read_buf.extend_from_slice(got);
                    // Decode inside the read loop so an oversized declared
                    // length is rejected after 4 bytes, not after buffering
                    // the whole flood.
                    self.decode_buffered(&mut outcome.frames)?;
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(ConnError::Io(e)),
            }
        }
        self.decode_buffered(&mut outcome.frames)?;
        Ok(outcome)
    }

    /// Decode every complete frame off the front of `read_buf`, then drop
    /// the consumed prefix in one compaction.
    fn decode_buffered(&mut self, frames: &mut Vec<Frame>) -> Result<(), FrameError> {
        let mut consumed = 0usize;
        while let Some(rest) = self.read_buf.get(consumed..) {
            match decode_frame(rest, self.max_frame) {
                Ok(Some((frame, n))) => {
                    frames.push(frame);
                    consumed += n;
                }
                Ok(None) => break,
                Err(e) => return Err(e),
            }
        }
        if consumed > 0 {
            self.read_buf.drain(..consumed);
        }
        Ok(())
    }

    /// Encode `frame` onto the outbound buffer. Nothing touches the
    /// transport here — call [`Connection::on_writable`] (and register for
    /// writability) to flush. Fails only for unencodable fields.
    pub fn queue_frame(&mut self, frame: &Frame) -> Result<(), FrameError> {
        encode_frame(frame, &mut self.write_buf)
    }

    /// Write buffered bytes until the transport would block or the buffer
    /// empties — the write half of reassembly. Returns `true` when the
    /// buffer is fully flushed (deregister writability interest).
    pub fn on_writable(&mut self) -> Result<bool, ConnError> {
        while self.write_start < self.write_buf.len() {
            let Some(pending) = self.write_buf.get(self.write_start..) else { break };
            match self.transport.write(pending) {
                Ok(0) => {
                    return Err(ConnError::Io(io::Error::new(
                        io::ErrorKind::WriteZero,
                        "transport accepted zero bytes",
                    )))
                }
                Ok(n) => self.write_start += n,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(ConnError::Io(e)),
            }
        }
        if self.write_start >= self.write_buf.len() {
            self.write_buf.clear();
            self.write_start = 0;
            Ok(true)
        } else {
            // Compact lazily: only once the dead prefix dominates, so steady
            // partial writes don't memmove the tail on every event.
            if self.write_start > INITIAL_BUF && self.write_start * 2 > self.write_buf.len() {
                self.write_buf.drain(..self.write_start);
                self.write_start = 0;
            }
            Ok(false)
        }
    }

    /// Outbound bytes queued but not yet accepted by the transport. The
    /// event loop compares this against the high/low-water marks to pause
    /// and resume reads.
    pub fn pending_out(&self) -> usize {
        self.write_buf.len().saturating_sub(self.write_start)
    }

    /// Whether the connection needs writability notifications.
    pub fn wants_write(&self) -> bool {
        self.pending_out() > 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::BackpressureFrame;
    use quadra_serve::Priority;
    use quadra_tensor::Tensor;
    use std::collections::VecDeque;

    /// A scripted transport: reads deliver at most `read_chunk` bytes per
    /// call from a queue of inbound segments (empty queue = WouldBlock);
    /// writes accept at most `write_chunk` bytes, with an optional forced
    /// WouldBlock every other call to exercise re-arming.
    struct Scripted {
        inbound: VecDeque<u8>,
        accepted: Vec<u8>,
        read_chunk: usize,
        write_chunk: usize,
        stutter_writes: bool,
        write_calls: usize,
        eof_after_drain: bool,
    }

    impl Scripted {
        fn new(read_chunk: usize, write_chunk: usize) -> Scripted {
            Scripted {
                inbound: VecDeque::new(),
                accepted: Vec::new(),
                read_chunk,
                write_chunk,
                stutter_writes: false,
                write_calls: 0,
                eof_after_drain: false,
            }
        }
    }

    impl Read for Scripted {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            if self.inbound.is_empty() {
                if self.eof_after_drain {
                    return Ok(0);
                }
                return Err(io::ErrorKind::WouldBlock.into());
            }
            let n = self.read_chunk.min(buf.len()).min(self.inbound.len());
            for slot in buf.iter_mut().take(n) {
                *slot = self.inbound.pop_front().unwrap();
            }
            Ok(n)
        }
    }

    impl Write for Scripted {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            self.write_calls += 1;
            if self.stutter_writes && self.write_calls % 2 == 0 {
                return Err(io::ErrorKind::WouldBlock.into());
            }
            let n = self.write_chunk.min(buf.len());
            if n == 0 {
                return Err(io::ErrorKind::WouldBlock.into());
            }
            self.accepted.extend_from_slice(&buf[..n]);
            Ok(n)
        }

        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    const MAX: usize = 1 << 20;

    fn request_frame() -> Frame {
        Frame::Request(crate::frame::RequestFrame {
            correlation_id: 11,
            priority: Priority::Interactive,
            deadline_ms: 0,
            model: "mlp".to_string(),
            tag: Some("t".to_string()),
            input: Tensor::from_vec(vec![0.5; 12], &[3, 4]).unwrap(),
        })
    }

    #[test]
    fn one_byte_reads_reassemble_into_whole_frames() {
        let frame = request_frame();
        let mut wire = Vec::new();
        encode_frame(&frame, &mut wire).unwrap();

        let mut t = Scripted::new(1, 64);
        t.inbound.extend(wire.iter().copied());
        let mut conn = Connection::new(t, MAX);

        let out = conn.on_readable().unwrap();
        assert!(!out.eof);
        assert_eq!(out.frames, vec![frame], "reassembled bitwise across 1-byte reads");
    }

    #[test]
    fn a_frame_split_across_events_is_delivered_once_complete() {
        let frame = request_frame();
        let mut wire = Vec::new();
        encode_frame(&frame, &mut wire).unwrap();
        let split = wire.len() / 2;

        let mut conn = Connection::new(Scripted::new(usize::MAX, 64), MAX);
        conn.transport.inbound.extend(wire[..split].iter().copied());
        let out = conn.on_readable().unwrap();
        assert!(out.frames.is_empty(), "half a frame decodes nothing");

        conn.transport.inbound.extend(wire[split..].iter().copied());
        let out = conn.on_readable().unwrap();
        assert_eq!(out.frames, vec![frame]);
    }

    #[test]
    fn many_frames_in_one_event_decode_in_order() {
        let mut wire = Vec::new();
        for id in 0..5u64 {
            encode_frame(
                &Frame::Backpressure(BackpressureFrame { correlation_id: id, retry_after_ms: 1 }),
                &mut wire,
            )
            .unwrap();
        }
        let mut conn = Connection::new(Scripted::new(usize::MAX, 64), MAX);
        conn.transport.inbound.extend(wire.iter().copied());
        let out = conn.on_readable().unwrap();
        let ids: Vec<u64> = out
            .frames
            .iter()
            .map(|f| match f {
                Frame::Backpressure(b) => b.correlation_id,
                other => panic!("unexpected {other:?}"),
            })
            .collect();
        assert_eq!(ids, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn tiny_write_chunks_flush_the_exact_encoding() {
        let frame = request_frame();
        let mut expected = Vec::new();
        encode_frame(&frame, &mut expected).unwrap();

        let mut conn = Connection::new(Scripted::new(usize::MAX, 3), MAX);
        conn.transport.stutter_writes = true;
        conn.queue_frame(&frame).unwrap();
        assert!(conn.wants_write());
        assert_eq!(conn.pending_out(), expected.len());

        let mut rounds = 0;
        while !conn.on_writable().unwrap() {
            rounds += 1;
            assert!(rounds < 10_000, "flush must terminate");
        }
        assert!(!conn.wants_write());
        assert_eq!(conn.pending_out(), 0);
        assert_eq!(conn.transport.accepted, expected, "3-byte stuttered writes reassemble bitwise");
    }

    #[test]
    fn queued_frames_flush_in_fifo_order_across_partial_writes() {
        let mut conn = Connection::new(Scripted::new(usize::MAX, 7), MAX);
        let mut expected = Vec::new();
        for id in 0..4u64 {
            let f = Frame::Backpressure(BackpressureFrame { correlation_id: id, retry_after_ms: 0 });
            conn.queue_frame(&f).unwrap();
            encode_frame(&f, &mut expected).unwrap();
        }
        while !conn.on_writable().unwrap() {}
        assert_eq!(conn.transport.accepted, expected);
    }

    #[test]
    fn eof_still_surfaces_buffered_frames() {
        let frame = request_frame();
        let mut wire = Vec::new();
        encode_frame(&frame, &mut wire).unwrap();
        let mut conn = Connection::new(Scripted::new(usize::MAX, 64), MAX);
        conn.transport.inbound.extend(wire.iter().copied());
        conn.transport.eof_after_drain = true;
        let out = conn.on_readable().unwrap();
        assert!(out.eof);
        assert_eq!(out.frames, vec![frame], "frames ahead of the EOF are not lost");
    }

    #[test]
    fn protocol_violation_mid_stream_is_fatal() {
        let mut wire = Vec::new();
        encode_frame(&Frame::GoAway, &mut wire).unwrap();
        wire.extend_from_slice(&2u32.to_le_bytes());
        wire.push(99); // unknown kind
        wire.push(0);
        let mut conn = Connection::new(Scripted::new(usize::MAX, 64), MAX);
        conn.transport.inbound.extend(wire.iter().copied());
        match conn.on_readable() {
            Err(ConnError::Protocol(FrameError::UnknownKind(99))) => {}
            other => panic!("expected protocol violation, got {other:?}"),
        }
    }

    #[test]
    fn pending_out_tracks_watermark_relevant_backlog() {
        let mut conn = Connection::new(Scripted::new(usize::MAX, 5), MAX);
        conn.queue_frame(&Frame::GoAway).unwrap();
        let total = conn.pending_out();
        assert!(conn.on_writable().unwrap());
        assert_eq!(conn.pending_out(), 0);
        assert!(total > 0);
    }
}
