//! One named model endpoint: its admission queue, hot-reload slot, metrics
//! hub, fleet-scheduler membership, and the arrival/service statistics behind
//! the adaptive wait budget and the live overload estimate.

use crate::admission::{AdmissionQueue, AdmitRejection};
use crate::metrics::{MetricsHub, ServeMetrics};
use crate::request::{PendingInfer, Priority, Request, ResponseHandle, ServeConfig, ServeError};
use crate::scheduler::FleetScheduler;
use crate::sync::lock_or_recover;
use crate::worker::ReloadSlot;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

/// EWMA smoothing: `new = (3 * old + sample) / 4`.
///
/// A single atomic read-modify-write: multiple workers feed `ewma_batch_us`
/// concurrently, and a separate load-then-store here would let two updates
/// race and silently drop one sample.
fn ewma_update(cell: &AtomicU64, sample_us: u64) {
    // quadra-analyze: allow(must_use, fetch_update with a Some-returning closure cannot fail)
    let _ = cell.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |old| {
        let next = if old == 0 { sample_us.max(1) } else { (3 * old + sample_us) / 4 };
        Some(next.max(1))
    });
}

/// Shared state of one model endpoint; the admission layer, worker pool, and
/// the router front-end all hold an `Arc` of this.
pub(crate) struct EndpointShared {
    pub name: String,
    pub config: ServeConfig,
    pub queue: AdmissionQueue,
    pub reload: ReloadSlot,
    pub metrics: MetricsHub,
    /// The fleet-level fair-share arbiter all endpoints of a router share.
    pub fleet: Arc<FleetScheduler>,
    /// This endpoint's member index in the fleet scheduler.
    pub member: usize,
    /// EWMA of request inter-arrival time in µs (0 = no data yet).
    ewma_interarrival_us: AtomicU64,
    last_arrival: Mutex<Option<Instant>>,
    /// EWMA of batch service (forward-pass) time in µs, fed by workers.
    ewma_batch_us: AtomicU64,
    /// Gauge: the wait budget a worker most recently computed, in µs.
    wait_budget_us: AtomicU64,
}

impl EndpointShared {
    pub fn new(name: &str, config: ServeConfig, fleet: Arc<FleetScheduler>) -> Self {
        // The queue keeps the shared depth cell current under its own lock;
        // the fleet scheduler reads it lock-free for contention checks.
        let depth_cell = Arc::new(AtomicUsize::new(0));
        let member = fleet.register(config.weight, Arc::clone(&depth_cell));
        EndpointShared {
            // quadra-analyze: allow(hot_alloc:to-string, endpoint construction runs once per registered model, not per request)
            name: name.to_string(),
            config,
            queue: AdmissionQueue::new(
                config.admission.queue_capacity,
                config.admission.batch_aging,
                depth_cell,
            ),
            reload: ReloadSlot::new(),
            metrics: MetricsHub::new(config.policy.max_batch_size),
            fleet,
            member,
            ewma_interarrival_us: AtomicU64::new(0),
            last_arrival: Mutex::new(None),
            ewma_batch_us: AtomicU64::new(0),
            wait_budget_us: AtomicU64::new(config.policy.max_wait.as_micros() as u64),
        }
    }

    /// Validate and admit one request; returns the response handle or the
    /// admission error (bad input, overload shed, shutting down).
    pub fn submit(&self, id: u64, request: Request) -> Result<ResponseHandle, ServeError> {
        if request.input.ndim() < 2 {
            // quadra-analyze: allow(hot_alloc:format, reject path: runs once per malformed request, never on admitted traffic)
            return Err(ServeError::BadInput(format!(
                "input must have a leading sample axis (got {}-d; wrap a single sample as [1, ...])",
                request.input.ndim()
            )));
        }
        let samples = request.input.shape()[0];
        if samples == 0 {
            return Err(ServeError::BadInput("input holds zero samples".into()));
        }
        self.record_arrival();
        let submitted_at = Instant::now();
        let deadline = request.resolve_deadline(submitted_at);
        let priority = request.priority;
        let cancelled = Arc::new(AtomicBool::new(false));
        let (reply, rx) = mpsc::channel();
        let pending = PendingInfer {
            id,
            input: request.input,
            samples,
            priority,
            tag: request.tag,
            submitted_at,
            deadline,
            cancelled: Arc::clone(&cancelled),
            reply,
        };
        match self.queue.try_admit(pending) {
            Ok(()) => {
                self.fleet.nudge();
                Ok(ResponseHandle { id, rx, cancelled })
            }
            Err((_, AdmitRejection::Closed)) => Err(ServeError::ShuttingDown),
            Err((_, AdmitRejection::Full)) => {
                self.metrics.record_shed(priority);
                Err(ServeError::Overloaded { retry_after: self.retry_after(priority) })
            }
        }
    }

    fn record_arrival(&self) {
        let now = Instant::now();
        let mut last = lock_or_recover(&self.last_arrival);
        if let Some(prev) = last.replace(now) {
            let dt_us = now.duration_since(prev).as_micros().min(u64::MAX as u128) as u64;
            ewma_update(&self.ewma_interarrival_us, dt_us);
        }
    }

    /// Workers report each batch's forward-pass duration here.
    pub fn record_batch_service(&self, service: Duration) {
        let us = service.as_micros().min(u64::MAX as u128) as u64;
        ewma_update(&self.ewma_batch_us, us);
    }

    /// The cost estimate the fair-share gate debits before a batch runs: the
    /// live EWMA batch-service time, or a nominal 1 ms before any batch has
    /// completed.
    pub fn estimated_batch_us(&self) -> u64 {
        let us = self.ewma_batch_us.load(Ordering::Relaxed);
        if us == 0 {
            1_000
        } else {
            us
        }
    }

    /// The wait budget for a batch currently holding `samples_in_batch`
    /// samples: `max_wait` under the static policy; under the adaptive policy
    /// the time the measured arrival rate needs to fill the batch, capped by
    /// twice the measured batch service time (waiting past that trades more
    /// latency than batching saves) and by `max_wait`, floored at
    /// `max_wait / 16` so in-flight bursts still coalesce.
    pub fn wait_budget(&self, samples_in_batch: usize) -> Duration {
        let policy = &self.config.policy;
        let max = policy.max_wait;
        if !policy.adaptive_wait {
            return max;
        }
        let inter_us = self.ewma_interarrival_us.load(Ordering::Relaxed);
        let budget = if inter_us == 0 {
            max // no arrival data yet: behave like the static policy
        } else {
            let remaining = policy.max_batch_size.saturating_sub(samples_in_batch).max(1) as u64;
            let mut budget_us = inter_us.saturating_mul(remaining);
            let svc_us = self.ewma_batch_us.load(Ordering::Relaxed);
            if svc_us > 0 {
                budget_us = budget_us.min(2 * svc_us);
            }
            // `min(max)` keeps floor ≤ max even for sub-microsecond caps
            // (Duration::clamp panics when min > max).
            let floor = (max / 16).max(Duration::from_micros(1)).min(max);
            Duration::from_micros(budget_us).clamp(floor, max)
        };
        self.wait_budget_us.store(budget.as_micros() as u64, Ordering::Relaxed);
        budget
    }

    /// Live estimate of when the backlog ahead of a newly shed request of
    /// `priority` will have drained: the samples queued ahead of that class
    /// (interactive only waits behind interactive; the batch class waits
    /// behind everything), in batches, divided over the worker pool, at the
    /// EWMA batch-service time (falling back to `max_wait` before any batch
    /// has completed). Shrinks live as the queue drains and as the measured
    /// service time drops.
    pub fn retry_after(&self, priority: Priority) -> Duration {
        let policy = &self.config.policy;
        let backlog = self.queue.class_backlog(priority);
        let batches_queued = backlog.div_ceil(policy.max_batch_size).max(1) as u32;
        let waves = batches_queued.div_ceil(self.config.workers.max(1) as u32).max(1);
        let svc_us = self.ewma_batch_us.load(Ordering::Relaxed);
        let per_batch = if svc_us > 0 {
            Duration::from_micros(svc_us)
        } else {
            policy.max_wait.max(Duration::from_millis(1))
        };
        per_batch * waves
    }

    /// Point-in-time snapshot of this endpoint's serving statistics.
    pub fn snapshot(&self) -> ServeMetrics {
        self.metrics.snapshot(
            &self.name,
            self.reload.version(),
            self.queue.depth(),
            Duration::from_micros(self.wait_budget_us.load(Ordering::Relaxed)),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::{AdmissionPolicy, BatchPolicy};
    use quadra_tensor::Tensor;

    fn endpoint(adaptive: bool) -> EndpointShared {
        EndpointShared::new(
            "test",
            ServeConfig {
                workers: 1,
                policy: BatchPolicy {
                    max_batch_size: 8,
                    max_wait: Duration::from_millis(16),
                    adaptive_wait: adaptive,
                    pad_mixed_spatial: false,
                },
                admission: AdmissionPolicy::default(),
                weight: 1,
            },
            Arc::new(FleetScheduler::new()),
        )
    }

    #[test]
    fn static_policy_returns_max_wait() {
        let ep = endpoint(false);
        ep.record_batch_service(Duration::from_micros(100));
        assert_eq!(ep.wait_budget(0), Duration::from_millis(16));
    }

    #[test]
    fn adaptive_budget_tracks_arrivals_and_service_time() {
        let ep = endpoint(true);
        // Cold start: no arrival data → fall back to the cap.
        assert_eq!(ep.wait_budget(0), Duration::from_millis(16));
        // Feed a steady ~200 µs inter-arrival EWMA and a 500 µs service EWMA.
        for _ in 0..32 {
            ewma_update(&ep.ewma_interarrival_us, 200);
            ewma_update(&ep.ewma_batch_us, 500);
        }
        let budget = ep.wait_budget(0);
        // Fill estimate: 8 × 200 µs = 1.6 ms, capped at 2 × 500 µs = 1 ms.
        assert_eq!(budget, Duration::from_micros(1000));
        // A nearly full batch needs only one more sample: floored at max/16.
        let near_full = ep.wait_budget(7);
        assert_eq!(near_full, Duration::from_millis(1));
        // Budget gauge reflects the last computation.
        assert_eq!(ep.snapshot().wait_budget_ms, 1.0);
    }

    #[test]
    fn zero_max_wait_dispatches_immediately_without_panicking() {
        // "Dispatch as soon as possible" was a legal setting before the
        // adaptive policy existed; the clamp must not panic on max_wait
        // below the 1 µs floor once arrival data exists.
        let ep = EndpointShared::new(
            "zero",
            ServeConfig {
                workers: 1,
                policy: BatchPolicy {
                    max_batch_size: 8,
                    max_wait: Duration::ZERO,
                    adaptive_wait: true,
                    pad_mixed_spatial: false,
                },
                admission: AdmissionPolicy::default(),
                weight: 1,
            },
            Arc::new(FleetScheduler::new()),
        );
        for _ in 0..4 {
            ewma_update(&ep.ewma_interarrival_us, 200);
            ewma_update(&ep.ewma_batch_us, 500);
        }
        assert_eq!(ep.wait_budget(0), Duration::ZERO);
    }

    #[test]
    fn adaptive_budget_never_exceeds_cap() {
        let ep = endpoint(true);
        for _ in 0..32 {
            ewma_update(&ep.ewma_interarrival_us, 1_000_000); // 1 s between arrivals
            ewma_update(&ep.ewma_batch_us, 1_000_000);
        }
        assert_eq!(ep.wait_budget(0), Duration::from_millis(16));
    }

    #[test]
    fn estimated_batch_cost_falls_back_before_data() {
        let ep = endpoint(true);
        assert_eq!(ep.estimated_batch_us(), 1_000, "nominal 1 ms before any batch completed");
        for _ in 0..32 {
            ewma_update(&ep.ewma_batch_us, 7_000);
        }
        assert_eq!(ep.estimated_batch_us(), 7_000);
    }

    /// Regression surface for the `Overloaded { retry_after }` satellite: the
    /// estimate is derived from the *live* queue depth and EWMA service time,
    /// so it must shrink monotonically as the queue drains.
    #[test]
    fn retry_after_shrinks_as_the_queue_drains() {
        let ep = endpoint(true); // max_batch_size 8, 1 worker
        for _ in 0..32 {
            ewma_update(&ep.ewma_batch_us, 10_000); // 10 ms per batch
        }
        // 24 queued batch-class samples = 3 batches of 8 → 30 ms.
        for _ in 0..24 {
            let _ = ep.submit(0, Request::new(Tensor::zeros(&[1, 2])).priority(Priority::Batch)).unwrap();
        }
        let deep = ep.retry_after(Priority::Batch);
        assert_eq!(deep, Duration::from_millis(30));

        // Drain two batches' worth: the estimate shrinks with the queue.
        for _ in 0..16 {
            assert!(matches!(ep.queue.pop_blocking(), crate::admission::PopResult::Request(_)));
        }
        let shallow = ep.retry_after(Priority::Batch);
        assert_eq!(shallow, Duration::from_millis(10));
        assert!(shallow < deep, "retry_after must shrink as the queue drains");

        // A faster measured service time shrinks it further, live.
        for _ in 0..64 {
            ewma_update(&ep.ewma_batch_us, 2_000);
        }
        assert!(ep.retry_after(Priority::Batch) < shallow);
    }

    #[test]
    fn retry_after_is_class_aware() {
        let ep = endpoint(true);
        for _ in 0..32 {
            ewma_update(&ep.ewma_batch_us, 10_000);
        }
        // 16 batch-class samples queued, nothing interactive.
        for _ in 0..16 {
            let _ = ep.submit(0, Request::new(Tensor::zeros(&[1, 2])).priority(Priority::Batch)).unwrap();
        }
        // An interactive request only waits behind interactive backlog (one
        // wave), while a batch-class one waits behind everything (two waves).
        assert_eq!(ep.retry_after(Priority::Interactive), Duration::from_millis(10));
        assert_eq!(ep.retry_after(Priority::Batch), Duration::from_millis(20));
    }

    #[test]
    fn retry_after_scales_with_backlog() {
        let ep = endpoint(true);
        for _ in 0..32 {
            ewma_update(&ep.ewma_batch_us, 10_000); // 10 ms per batch
        }
        let empty = ep.retry_after(Priority::Interactive);
        assert_eq!(empty, Duration::from_millis(10));
    }
}
